// Package csd emulates a Cold Storage Device: a MAID array in which only
// one disk group is spun up at a time. Accessing an object in the loaded
// group costs a bandwidth-bound transfer; accessing any other group first
// costs a group switch (spin-down + spin-up, ~10 s). The emulator mirrors
// the paper's Swift middleware: it maintains object→group metadata, adds
// group-switch delays, serializes each tenant's transfers on a per-tenant
// stream, and schedules switches with a pluggable policy (§4.4). Pending
// requests for the same object — across queries and tenants — are
// coalesced into a single transfer whose delivery fans out to every
// requester (Stats.GetsCoalesced), lifting the paper's observation that
// FCFS device policies "cannot merge requests across queries" into the
// device itself.
package csd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Delivery is one object handed back to a client.
type Delivery struct {
	Object segment.ObjectID
	Seg    *segment.Segment
	// Device is the id of the device that produced the delivery
	// (Config.ID). Clients in a multi-device fleet use it to attribute
	// faults to the right replica — a DeviceDownError from device 1 says
	// nothing about device 0's health.
	Device int
	// Err, when non-nil, reports that the device failed the request
	// instead of serving it (e.g. a scheduler contract violation). Seg is
	// nil in that case.
	Err error
}

// SchedulerContractError reports a Scheduler.NextGroup return value that
// violates the interface contract: a group with no pending requests
// (including -1 or an unknown group id) or the already-loaded group.
// Before this validation a misbehaving policy silently corrupted the run
// — the device would spin the switch loop or panic deep in dispatch; now
// the run fails fast with this error delivered to every waiting client.
type SchedulerContractError struct {
	// Scheduler is the policy's Name().
	Scheduler string
	// Returned is the offending group id.
	Returned int
	// Loaded is the group that was loaded when NextGroup was consulted.
	Loaded int
	// Reason describes the violated clause.
	Reason string
}

func (e *SchedulerContractError) Error() string {
	return fmt.Sprintf("csd: scheduler %s violated its contract: returned group %d (loaded %d): %s",
		e.Scheduler, e.Returned, e.Loaded, e.Reason)
}

// Request is a tagged GET: the client proxy attaches the query identifier
// so the scheduler can be workload-aware (§4.3).
type Request struct {
	Object  segment.ObjectID
	QueryID string
	Tenant  int
	Reply   *vtime.Chan[Delivery]

	seq       int           // arrival order, assigned by the CSD
	arrivedAt time.Duration // virtual arrival time
	// followers are later pending requests for the same object coalesced
	// onto this one: the transfer runs once and the delivery fans out to
	// every follower's reply channel at the same completion time.
	followers []*Request
}

// Interval is a half-open virtual-time interval [From, To).
type Interval struct {
	From, To time.Duration
}

// Stats aggregates what the device did during a run.
type Stats struct {
	GroupSwitches int
	ObjectsServed int
	// BytesServed sums the nominal (paper-scale, 1 GB) object sizes the
	// transfer model charges for.
	BytesServed int64
	// PayloadBytesServed sums the actual encoded sizes of the served
	// objects — the wire footprint of the segment format in use. Zero
	// when the store holds in-memory (never-encoded) segments.
	PayloadBytesServed int64
	GetsReceived       int
	// GetsCoalesced counts requests that were merged onto an earlier
	// request for the same object instead of paying their own transfer —
	// whether both were pending in the same dispatch round or the later
	// one arrived while the earlier one's transfer was already in
	// flight: N same-object requests cost one transfer (one BytesServed
	// charge) and N deliveries, N-1 of them coalesced.
	GetsCoalesced   int
	GetsByTenant    map[int]int
	ServedByQuery   map[string]int
	SwitchIntervals []Interval // when the device was mid-switch
	// GetsAvoided counts segment requests that were never issued because
	// the clients' statistics subsystem (zone maps + Bloom filters)
	// skipped them. The device cannot observe these itself; the cluster
	// harness fills the field in after a run so device traffic and
	// avoided traffic can be reported together.
	GetsAvoided int
	// TransientFaults / StalledTransfers / CorruptDeliveries count what
	// the fault injector actually surfaced: transfers failed with a
	// TransientError (no byte charge), transfers delayed by a stall, and
	// deliveries served with a bit-flipped payload (charged — the bytes
	// did travel). A corrupt fault against an in-memory segment degrades
	// to a transient failure (there are no wire bytes to flip) and counts
	// there.
	TransientFaults   int
	StalledTransfers  int
	CorruptDeliveries int
	// Crashes / Restarts count whole-device crash windows entered and
	// exited. DownErrors counts requests refused (or in-flight transfers
	// voided) because the device was down.
	Crashes    int
	Restarts   int
	DownErrors int
}

// Plus returns the element-wise sum of two Stats — counters added, maps
// merged, switch intervals concatenated in time order. The cluster
// harness uses it to fold a fleet's per-device statistics into the
// aggregate view single-device callers already consume.
func (s Stats) Plus(o Stats) Stats {
	out := s
	out.GroupSwitches += o.GroupSwitches
	out.ObjectsServed += o.ObjectsServed
	out.BytesServed += o.BytesServed
	out.PayloadBytesServed += o.PayloadBytesServed
	out.GetsReceived += o.GetsReceived
	out.GetsCoalesced += o.GetsCoalesced
	out.GetsAvoided += o.GetsAvoided
	out.TransientFaults += o.TransientFaults
	out.StalledTransfers += o.StalledTransfers
	out.CorruptDeliveries += o.CorruptDeliveries
	out.Crashes += o.Crashes
	out.Restarts += o.Restarts
	out.DownErrors += o.DownErrors
	out.GetsByTenant = mergeCounts(s.GetsByTenant, o.GetsByTenant)
	out.ServedByQuery = mergeCounts(s.ServedByQuery, o.ServedByQuery)
	if len(o.SwitchIntervals) > 0 {
		merged := make([]Interval, 0, len(s.SwitchIntervals)+len(o.SwitchIntervals))
		merged = append(merged, s.SwitchIntervals...)
		merged = append(merged, o.SwitchIntervals...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].From < merged[j].From })
		out.SwitchIntervals = merged
	}
	return out
}

// mergeCounts sums two count maps into a fresh map (nil when both are).
func mergeCounts[K comparable](a, b map[K]int) map[K]int {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[K]int, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// Config parametrizes the device.
type Config struct {
	// ID names the device within a fleet. Single-device clusters leave it
	// 0; the cluster harness stamps ids [0, N) so deliveries, trace
	// events and process names say which device they came from.
	ID int
	// GroupSwitch is the spin-down/spin-up latency of a group switch
	// (Pelican: 8 s; the paper's experiments default to 10 s).
	GroupSwitch time.Duration
	// Bandwidth is the per-tenant-stream transfer rate in bytes/second.
	Bandwidth float64
	// Scheduler picks the next group (default: RankBased with K=1).
	Scheduler Scheduler
	// Order arranges requests within a loaded group for one tenant
	// (default: SemanticRoundRobin).
	Order OrderKind
	// StreamsPerTenant is the number of concurrent transfers per tenant
	// (default 1, the paper's serialized middleware). Raising it
	// implements §5.2.1's outlook — "by parallelizing the servicing of
	// requests within a group, we can reduce transfer time
	// substantially" — at the cost of strict per-tenant delivery order.
	StreamsPerTenant int
	// Events, when non-nil, receives structured trace events (GETs,
	// deliveries, switches).
	Events *trace.Log
	// Faults, when non-nil, injects the configured fault plan into every
	// transfer: transient failures, stalls, corrupt payloads and the
	// crash window. Nil means a perfect device. Note that a plan with a
	// crash schedule keeps the virtual clock running at least to the
	// crash (and restart) time — the timers are simulated processes.
	Faults *faults.Injector
}

// DefaultConfig returns the paper's defaults: 10 s switch, 100 MB/s
// effective per-stream bandwidth (≈10 s per 1 GB object, Table 3), the
// rank-based scheduler and semantic in-group ordering.
func DefaultConfig() Config {
	return Config{
		GroupSwitch: 10 * time.Second,
		Bandwidth:   100e6,
		Scheduler:   NewRankBased(1),
		Order:       SemanticRoundRobin,
	}
}

// OrderKind selects the in-group request ordering (§4.4 "What ordering
// within a group?").
type OrderKind uint8

const (
	// SemanticRoundRobin satisfies object requests evenly across the
	// relations of each query (A.1, B.1, C.1, A.2, ...), which lets a
	// cache-limited MJoin execute subplans as data streams in.
	SemanticRoundRobin OrderKind = iota
	// SequentialOrder returns objects in request-arrival order (all of
	// A, then all of B, ...), the pathological ordering for MJoin.
	SequentialOrder
)

// event multiplexes the controller's inputs over one channel (the vtime
// kernel has no select).
type event struct {
	req      *Request // a new GET
	doneID   int      // tenant whose stream finished a transfer (when req == nil and !shutdown)
	done     bool
	shutdown bool
	crash    bool // fault plan: the device crash-stops now
	restart  bool // fault plan: the downtime window ended
}

// CSD is the emulated device. Create with New, then Start it on a
// simulation, send GETs via Submit, and Shutdown when clients are done.
type CSD struct {
	sim    *vtime.Sim
	cfg    Config
	store  map[segment.ObjectID]*segment.Segment
	assign *layout.Assignment

	evCh    *vtime.Chan[event]
	streams map[int]*stream

	// controller state
	loaded      int // -1 before first load
	pending     []*Request
	inFlight    int
	arrivalSeq  int
	lastService map[string]int // queryID -> switch count at last service/arrival
	rrPos       map[string]int // queryID -> round-robin cursor over tables
	// inflight indexes the carrier request of every transfer currently
	// queued or running, so a later same-object request can ride along
	// instead of paying a second transfer. The stream worker deletes the
	// entry at transfer completion, before fanning out deliveries; the
	// worker's completion sequence never yields (all its channel sends
	// are buffered), so a follower is either attached while the entry
	// exists — and delivered — or misses it entirely and becomes a fresh
	// pending request. No follower can be attached to a carrier that has
	// already delivered.
	inflight map[segment.ObjectID]*Request
	// fatal, once set, fail-stops the device: every pending and future
	// request is answered with an error delivery instead of data.
	fatal error
	// down marks a crash window: pending and in-flight work fails with a
	// DeviceDownError and new requests are refused until restart (if the
	// plan has one — otherwise the window lasts the rest of the run).
	down bool

	stats Stats
}

// stream carries transfers to one tenant over one or more workers.
type stream struct {
	tenant  int
	queue   *vtime.Chan[*Request]
	workers int
}

// New builds a CSD over the given simulator, object store and layout.
func New(sim *vtime.Sim, cfg Config, store map[segment.ObjectID]*segment.Segment, assign *layout.Assignment) *CSD {
	if cfg.GroupSwitch < 0 {
		panic("csd: negative group switch latency")
	}
	if cfg.Bandwidth <= 0 {
		panic("csd: bandwidth must be positive")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewRankBased(1)
	}
	return &CSD{
		sim:         sim,
		cfg:         cfg,
		store:       store,
		assign:      assign,
		evCh:        vtime.NewChan[event](sim, deviceName(cfg.ID)+".events", 1<<20),
		streams:     make(map[int]*stream),
		loaded:      -1,
		lastService: make(map[string]int),
		rrPos:       make(map[string]int),
		inflight:    make(map[segment.ObjectID]*Request),
	}
}

// deviceName renders a device's process-name prefix: "csd" for the
// primary (id 0, the historical single-device name) and "csd<id>"
// beyond it, so a fleet's simulated processes are tellable apart.
func deviceName(id int) string {
	if id == 0 {
		return "csd"
	}
	return fmt.Sprintf("csd%d", id)
}

// Stats returns a copy of the device statistics. Valid after Run.
func (c *CSD) Stats() Stats {
	st := c.stats
	return st
}

// ID returns the device's fleet id (Config.ID).
func (c *CSD) ID() int { return c.cfg.ID }

// Down reports whether the device is inside a crash window. Advisory in
// the same sense as LoadedGroup: exact at the instant of the call,
// stale after the caller's next yield. The fleet's device chooser uses
// it to route around a crashed replica.
func (c *CSD) Down() bool { return c.down }

// Err returns the fatal device error, if any — e.g. a
// *SchedulerContractError from a misbehaving policy. The same error is
// also delivered (as Delivery.Err) to every request the device could not
// serve, so clients normally observe it without polling here.
func (c *CSD) Err() error { return c.fatal }

// LoadedGroup returns the currently spun-up group, or -1 before the
// first load. Advisory: safe to call from any simulated process because
// the cooperative vtime kernel runs exactly one process at a time, but
// the value may change at the caller's next yield. Client-side
// prefetchers use it to aim lookahead GETs at data the device can serve
// without a switch.
func (c *CSD) LoadedGroup() int { return c.loaded }

// PredictNextGroup runs the scheduler's NextGroup policy over the
// current pending set without switching, returning the group the device
// would spin up next — or -1 when nothing is pending, the device is
// fail-stopped, or the policy violates its contract (the real switch
// will fail-stop; the prediction just declines to guess). Advisory in
// the same sense as LoadedGroup: the pending set the real switch sees
// may differ by the time it happens.
func (c *CSD) PredictNextGroup() (int, bool) {
	if c.fatal != nil || len(c.pending) == 0 {
		return -1, false
	}
	byGroup := make(map[int][]*Request)
	for _, r := range c.pending {
		byGroup[c.mustGroupOf(r.Object)] = append(byGroup[c.mustGroupOf(r.Object)], r)
	}
	waiting := func(queryID string) int {
		return c.stats.GroupSwitches - c.lastService[queryID]
	}
	next := c.cfg.Scheduler.NextGroup(c.loaded, byGroup, waiting)
	if next == c.loaded {
		return -1, false
	}
	if _, ok := byGroup[next]; !ok {
		return -1, false
	}
	return next, true
}

// Submit enqueues a GET request. Must be called from a simulated process.
func (c *CSD) Submit(p *vtime.Proc, reqs ...*Request) {
	for _, r := range reqs {
		if _, ok := c.store[r.Object]; !ok {
			panic(fmt.Sprintf("csd: GET for unknown object %v", r.Object))
		}
		c.evCh.Send(p, event{req: r})
	}
}

// Shutdown stops the controller after all in-flight work drains. Clients
// must not Submit afterwards.
func (c *CSD) Shutdown(p *vtime.Proc) {
	c.evCh.Send(p, event{shutdown: true})
}

// Start spawns the controller process — and, when the fault plan has a
// crash schedule, the crash and restart timers. Call once before
// Sim.Run.
func (c *CSD) Start() {
	c.sim.Spawn(deviceName(c.cfg.ID)+".controller", c.controller)
	if c.cfg.Faults == nil {
		return
	}
	plan := c.cfg.Faults.Plan()
	if plan.CrashAt <= 0 {
		return
	}
	c.sim.Spawn(deviceName(c.cfg.ID)+".crashtimer", func(p *vtime.Proc) {
		p.Sleep(plan.CrashAt)
		c.evCh.Send(p, event{crash: true})
	})
	if plan.CrashDowntime > 0 {
		c.sim.Spawn(deviceName(c.cfg.ID)+".restarttimer", func(p *vtime.Proc) {
			p.Sleep(plan.CrashAt + plan.CrashDowntime)
			c.evCh.Send(p, event{restart: true})
		})
	}
}

// willRestart reports whether the fault plan brings a crashed device
// back.
func (c *CSD) willRestart() bool {
	return c.cfg.Faults != nil && c.cfg.Faults.Plan().CrashDowntime > 0
}

// crash enters the crash window: every pending request fails with a
// DeviceDownError, and apply refuses new ones until restart. Transfers
// already in flight fail at their completion instant (the stream worker
// checks c.down) — the device forgot them when it went down.
func (c *CSD) crash(p *vtime.Proc) {
	if c.down || c.fatal != nil {
		return
	}
	c.down = true
	c.stats.Crashes++
	restarting := c.willRestart()
	c.sim.Tracef("csd: crash (restarting=%v, %d pending)", restarting, len(c.pending))
	c.cfg.Events.Add(trace.Event{
		At: p.Now(), Kind: trace.KindSwitch, Tenant: -1, Group: -1, Device: c.cfg.ID,
		Note: fmt.Sprintf("crash restarting=%v", restarting),
	})
	for _, r := range c.pending {
		c.stats.DownErrors++
		r.Reply.Send(p, Delivery{Object: r.Object, Device: c.cfg.ID, Err: &DeviceDownError{Object: r.Object, Restarting: restarting}})
	}
	c.pending = nil
}

func (c *CSD) controller(p *vtime.Proc) {
	c.stats.GetsByTenant = make(map[int]int)
	c.stats.ServedByQuery = make(map[string]int)
	shuttingDown := false
	for {
		// Drain everything already queued.
		for {
			ev, ok := c.evCh.TryRecv(p)
			if !ok {
				break
			}
			shuttingDown = c.apply(p, ev) || shuttingDown
		}
		if shuttingDown && len(c.pending) == 0 && c.inFlight == 0 {
			c.stopStreams(p)
			return
		}
		// Dispatch serviceable requests (loaded group) to tenant streams.
		if c.dispatch(p) {
			continue
		}
		if c.inFlight > 0 {
			// Wait for a completion (or new request) before deciding.
			shuttingDown = c.apply(p, c.evCh.Recv(p)) || shuttingDown
			continue
		}
		if len(c.pending) > 0 {
			// Everything pending is on other groups: switch.
			if err := c.switchGroup(p); err != nil {
				c.fail(p, err)
			}
			continue
		}
		if shuttingDown {
			c.stopStreams(p)
			return
		}
		// Idle: block for the next event.
		shuttingDown = c.apply(p, c.evCh.Recv(p)) || shuttingDown
	}
}

// apply folds one event into controller state, returning true on shutdown.
func (c *CSD) apply(p *vtime.Proc, ev event) bool {
	switch {
	case ev.shutdown:
		return true
	case ev.crash:
		c.crash(p)
	case ev.restart:
		if c.down {
			c.down = false
			c.stats.Restarts++
			c.sim.Tracef("csd: restarted")
			c.cfg.Events.Add(trace.Event{
				At: p.Now(), Kind: trace.KindSwitch, Tenant: -1, Group: c.loaded, Device: c.cfg.ID,
				Note: "restart",
			})
		}
	case ev.req != nil:
		r := ev.req
		if c.fatal != nil {
			// Fail-stopped device: answer immediately with the error.
			r.Reply.Send(p, Delivery{Object: r.Object, Device: c.cfg.ID, Err: c.fatal})
			return false
		}
		if c.down {
			// Crashed device: refuse rather than queue, so clients see the
			// window and back off instead of waiting on a dead box.
			c.stats.DownErrors++
			r.Reply.Send(p, Delivery{Object: r.Object, Device: c.cfg.ID, Err: &DeviceDownError{Object: r.Object, Restarting: c.willRestart()}})
			return false
		}
		r.seq = c.arrivalSeq
		c.arrivalSeq++
		r.arrivedAt = p.Now()
		if _, seen := c.lastService[r.QueryID]; !seen {
			// A query starts waiting from its arrival (§4.4).
			c.lastService[r.QueryID] = c.stats.GroupSwitches
		}
		c.pending = append(c.pending, r)
		c.stats.GetsReceived++
		c.stats.GetsByTenant[r.Tenant]++
		c.cfg.Events.Add(trace.Event{
			At: p.Now(), Kind: trace.KindGet, Tenant: r.Tenant, Device: c.cfg.ID,
			Query: r.QueryID, Object: r.Object.String(), Group: c.mustGroupOf(r.Object),
		})
	case ev.done:
		c.inFlight--
	}
	return false
}

// dispatch hands every pending request on the loaded group to its tenant's
// stream, in the configured in-group order. Duplicate requests for the
// same object — across queries and tenants, whether pending in this round
// or already in flight from an earlier one — are coalesced onto the first
// requester in service order: the object is transferred once (one
// BytesServed charge) and the delivery fans out to every rider at the
// transfer's completion time. Reports whether any request was dispatched.
func (c *CSD) dispatch(p *vtime.Proc) bool {
	if c.loaded < 0 {
		// First load is free: the device is assumed to have the first
		// requested group spun up (the paper's single-client runs see
		// zero switches).
		if len(c.pending) == 0 {
			return false
		}
		c.loaded = c.mustGroupOf(c.pending[0].Object)
	}
	var onLoaded, rest []*Request
	for _, r := range c.pending {
		if c.mustGroupOf(r.Object) == c.loaded {
			onLoaded = append(onLoaded, r)
		} else {
			rest = append(rest, r)
		}
	}
	if len(onLoaded) == 0 {
		return false
	}
	c.pending = rest
	for _, r := range c.orderRequests(onLoaded) {
		c.lastService[r.QueryID] = c.stats.GroupSwitches
		c.stats.ServedByQuery[r.QueryID]++
		if carrier, dup := c.inflight[r.Object]; dup {
			carrier.followers = append(carrier.followers, r)
			c.stats.GetsCoalesced++
			continue
		}
		c.inflight[r.Object] = r
		c.tenantStream(r.Tenant).queue.Send(p, r)
		c.inFlight++
	}
	return true
}

func (c *CSD) mustGroupOf(id segment.ObjectID) int {
	g, err := c.assign.GroupOf(id)
	if err != nil {
		panic(err)
	}
	return g
}

// switchGroup asks the scheduler for the next group and pays the latency.
// A scheduler return that violates the NextGroup contract yields a
// *SchedulerContractError instead of a switch.
func (c *CSD) switchGroup(p *vtime.Proc) error {
	byGroup := make(map[int][]*Request)
	for _, r := range c.pending {
		g := c.mustGroupOf(r.Object)
		byGroup[g] = append(byGroup[g], r)
	}
	waiting := func(queryID string) int {
		return c.stats.GroupSwitches - c.lastService[queryID]
	}
	next := c.cfg.Scheduler.NextGroup(c.loaded, byGroup, waiting)
	if next == c.loaded {
		return &SchedulerContractError{
			Scheduler: c.cfg.Scheduler.Name(), Returned: next, Loaded: c.loaded,
			Reason: "picked the already-loaded group",
		}
	}
	if _, ok := byGroup[next]; !ok {
		return &SchedulerContractError{
			Scheduler: c.cfg.Scheduler.Name(), Returned: next, Loaded: c.loaded,
			Reason: "picked a group with no pending requests",
		}
	}
	from := p.Now()
	prev := c.loaded
	p.Sleep(c.cfg.GroupSwitch)
	c.loaded = next
	c.stats.GroupSwitches++
	c.stats.SwitchIntervals = append(c.stats.SwitchIntervals, Interval{From: from, To: p.Now()})
	c.sim.Tracef("csd: switched to group %d (%d pending)", next, len(c.pending))
	c.cfg.Events.Add(trace.Event{
		At: p.Now(), Kind: trace.KindSwitch, Tenant: -1, Group: next, Device: c.cfg.ID,
		Note: fmt.Sprintf("g%d->g%d", prev, next),
	})
	return nil
}

// fail fail-stops the device: the error is recorded and every pending
// request (and, via apply, every future one) receives an error delivery,
// so no client blocks forever on a device that cannot make progress.
// In-flight transfers complete normally.
func (c *CSD) fail(p *vtime.Proc, err error) {
	c.fatal = err
	c.sim.Tracef("csd: fail-stop: %v", err)
	for _, r := range c.pending {
		r.Reply.Send(p, Delivery{Object: r.Object, Device: c.cfg.ID, Err: err})
	}
	c.pending = nil
}

// tenantStream lazily spawns the per-tenant transfer worker(s).
func (c *CSD) tenantStream(tenant int) *stream {
	if s, ok := c.streams[tenant]; ok {
		return s
	}
	s := &stream{
		tenant: tenant,
		queue:  vtime.NewChan[*Request](c.sim, fmt.Sprintf("%s.stream.t%d", deviceName(c.cfg.ID), tenant), 1<<20),
	}
	c.streams[tenant] = s
	workers := c.cfg.StreamsPerTenant
	if workers < 1 {
		workers = 1
	}
	s.workers = workers
	for w := 0; w < workers; w++ {
		c.sim.Spawn(fmt.Sprintf("%s.stream.t%d.w%d", deviceName(c.cfg.ID), tenant, w), func(p *vtime.Proc) {
			for {
				r := s.queue.Recv(p)
				if r == nil {
					return
				}
				seg := c.store[r.Object]
				d := time.Duration(float64(seg.NominalBytes) / c.cfg.Bandwidth * float64(time.Second))
				var out faults.Outcome
				if c.cfg.Faults != nil {
					out = c.cfg.Faults.Transfer(r.Object.String())
				}
				if out.Stall > 0 {
					c.stats.StalledTransfers++
				}
				p.Sleep(d + out.Stall)
				// Close the ride-along window before fanning out: from here
				// on a new same-object request must pay its own transfer.
				// This sequence runs without yielding (see the inflight
				// field), so no follower can be attached after delivery.
				delete(c.inflight, r.Object)
				switch {
				case c.down:
					// The device crashed while this transfer was in flight:
					// the carrier and every coalesced follower get the same
					// error delivery — no partial fan-out, no byte charge.
					restarting := c.willRestart()
					for _, rr := range append([]*Request{r}, r.followers...) {
						c.stats.DownErrors++
						rr.Reply.Send(p, Delivery{Object: rr.Object, Device: c.cfg.ID, Err: &DeviceDownError{Object: rr.Object, Restarting: restarting}})
					}
				case out.Fail:
					// Transient failure: the transfer time was spent but no
					// data arrived, so nothing is charged. Every requester
					// sees the error and may retry.
					c.stats.TransientFaults++
					err := &TransientError{Object: r.Object, Attempt: c.cfg.Faults.Attempts(r.Object.String())}
					for _, rr := range append([]*Request{r}, r.followers...) {
						rr.Reply.Send(p, Delivery{Object: rr.Object, Device: c.cfg.ID, Err: err})
						c.cfg.Events.Add(trace.Event{
							At: p.Now(), Kind: trace.KindDelivery, Tenant: rr.Tenant, Device: c.cfg.ID,
							Query: rr.QueryID, Object: rr.Object.String(), Group: -1,
							Note: "transient-fault",
						})
					}
				default:
					served := seg
					note := ""
					if out.Corrupt {
						if bad := seg.CorruptedCopy(); bad != nil {
							served, note = bad, "corrupt"
							c.stats.CorruptDeliveries++
						} else {
							// In-memory segments carry no wire bytes to flip;
							// degrade the fault to a transient failure so the
							// plan still exercises the retry path.
							c.stats.TransientFaults++
							err := &TransientError{Object: r.Object, Attempt: c.cfg.Faults.Attempts(r.Object.String())}
							for _, rr := range append([]*Request{r}, r.followers...) {
								rr.Reply.Send(p, Delivery{Object: rr.Object, Device: c.cfg.ID, Err: err})
							}
							c.evCh.Send(p, event{done: true, doneID: s.tenant})
							continue
						}
					}
					// One transfer, one byte charge; the delivery fans out to
					// the carrier and every coalesced follower at the same
					// completion instant. Corrupt bytes traveled, so they are
					// charged like clean ones.
					c.stats.BytesServed += seg.NominalBytes
					c.stats.PayloadBytesServed += seg.EncodedSize()
					for _, rr := range append([]*Request{r}, r.followers...) {
						rr.Reply.Send(p, Delivery{Object: rr.Object, Seg: served, Device: c.cfg.ID})
						c.stats.ObjectsServed++
						c.cfg.Events.Add(trace.Event{
							At: p.Now(), Kind: trace.KindDelivery, Tenant: rr.Tenant, Device: c.cfg.ID,
							Query: rr.QueryID, Object: rr.Object.String(), Group: -1,
							Note: note,
						})
					}
				}
				c.evCh.Send(p, event{done: true, doneID: s.tenant})
			}
		})
	}
	return s
}

func (c *CSD) stopStreams(p *vtime.Proc) {
	for _, s := range c.streams {
		for w := 0; w < s.workers; w++ {
			s.queue.Send(p, nil)
		}
	}
}

// orderRequests arranges same-group requests before dispatch. Requests of
// different tenants land on independent streams, so ordering only matters
// within a tenant; SemanticRoundRobin interleaves each query's relations
// evenly (§4.4), SequentialOrder preserves arrival order.
func (c *CSD) orderRequests(reqs []*Request) []*Request {
	if c.cfg.Order == SequentialOrder {
		return reqs
	}
	// Bucket by query, then by table, preserving arrival order within
	// each bucket.
	type tableQueue struct {
		table string
		reqs  []*Request
	}
	type queryBucket struct {
		id     string
		tables []*tableQueue
		byName map[string]*tableQueue
		total  int
	}
	var queries []*queryBucket
	index := make(map[string]*queryBucket)
	for _, r := range reqs {
		qb, ok := index[r.QueryID]
		if !ok {
			qb = &queryBucket{id: r.QueryID, byName: make(map[string]*tableQueue)}
			index[r.QueryID] = qb
			queries = append(queries, qb)
		}
		tq, ok := qb.byName[r.Object.Table]
		if !ok {
			tq = &tableQueue{table: r.Object.Table}
			qb.byName[r.Object.Table] = tq
			qb.tables = append(qb.tables, tq)
		}
		tq.reqs = append(tq.reqs, r)
		qb.total++
	}
	out := make([]*Request, 0, len(reqs))
	for _, qb := range queries {
		// Round-robin across the query's tables: A.1, B.1, C.1, A.2, ...
		cursors := make([]int, len(qb.tables))
		for emitted := 0; emitted < qb.total; {
			for ti, tq := range qb.tables {
				if cursors[ti] < len(tq.reqs) {
					out = append(out, tq.reqs[cursors[ti]])
					cursors[ti]++
					emitted++
				}
			}
		}
	}
	return out
}
