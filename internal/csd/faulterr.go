package csd

import (
	"errors"
	"fmt"

	"repro/internal/segment"
)

// TransientError reports a GET the device failed transiently: the
// transfer consumed its time and then broke (the emulated analogue of a
// dropped connection or a read error the device's own retry gave up
// on). The object is intact; re-requesting it is expected to succeed —
// the fault plan bounds how many times one object may fail.
type TransientError struct {
	Object segment.ObjectID
	// Attempt is how many transfers of this object the device has
	// attempted so far, this failure included.
	Attempt int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("csd: transient GET failure for %v (attempt %d)", e.Object, e.Attempt)
}

// DeviceDownError reports a GET that hit a crashed device: requests
// issued while the device is down, and transfers in flight when it went
// down, all fail with it. Restarting tells the client whether waiting
// is useful: true means the fault plan restarts the device after its
// downtime window, false means the crash is permanent for this run.
type DeviceDownError struct {
	Object segment.ObjectID
	// Restarting reports whether the device will come back.
	Restarting bool
}

func (e *DeviceDownError) Error() string {
	if e.Restarting {
		return fmt.Sprintf("csd: device down (restarting) for %v", e.Object)
	}
	return fmt.Sprintf("csd: device crashed (no restart) for %v", e.Object)
}

// IsRetryable classifies a delivery error: transient failures and
// down-but-restarting windows are worth retrying; a permanent crash or
// a *SchedulerContractError-class fatal fault is not. Corruption is not
// classified here — it surfaces as a checksum failure on the payload,
// not as a delivery error.
//
// An error whose chain carries a RetriesExhausted marker (the retry
// layer's exhaustion wrapper) is never retryable, even though the final
// fault it wraps usually is: recovery has already been spent, and
// re-classifying the wrapper by its cause would invite a retry loop.
func IsRetryable(err error) bool {
	var fin interface{ RetriesExhausted() }
	if errors.As(err, &fin) {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var de *DeviceDownError
	if errors.As(err, &de) {
		return de.Restarting
	}
	return false
}
