// Package stats implements the segment-statistics and data-skipping
// subsystem: per-segment zone maps (min/max per column plus row and null
// counts) and optional Bloom filters for equality columns. Statistics
// are computed once, when a relation is generated or loaded, and live
// with the catalog on the database VM — like the paper's catalog files
// they are local metadata, never objects on the cold storage device — so
// both engines can prove, before issuing a single GET, that a segment
// cannot contain a row satisfying a query's table-local predicates. On a
// CSD, where one avoided fetch saves a bandwidth-bound transfer and
// possibly a group switch, that proof is worth far more than the few
// bytes of metadata it costs.
package stats

import (
	"fmt"

	"repro/internal/segment"
	"repro/internal/tuple"
)

// ColumnStats is the zone-map entry of one column within one segment.
type ColumnStats struct {
	// Min and Max bound the column's values in the segment. They are
	// only meaningful when HasRange is true.
	Min, Max tuple.Value
	// HasRange reports whether the segment holds at least one row (the
	// engine has no NULLs, so a row always contributes to the range).
	HasRange bool
	// Nulls counts NULL values. This engine has no NULLs, so the field
	// is always zero; it is kept so the metadata format matches what a
	// real system would persist.
	Nulls int64
	// Bloom, when non-nil, summarizes the exact value set for equality
	// probes. It is built only for equality-friendly kinds (everything
	// but float64).
	Bloom *Bloom
}

// SegmentStats bundles the zone maps of one segment.
type SegmentStats struct {
	// Rows is the segment's row count.
	Rows int64
	// Cols holds one entry per schema column, in schema order.
	Cols []ColumnStats
}

// Table is the catalog-side statistics of one relation: one SegmentStats
// per backing object, aligned with the catalog's object order
// (Segments[i] describes the relation's i-th object).
type Table struct {
	// Name is the relation name, for diagnostics.
	Name string
	// Schema describes the columns the per-segment entries cover.
	Schema *tuple.Schema
	// Segments holds the per-segment zone maps in object order.
	Segments []SegmentStats
}

// Options controls what Collect computes.
type Options struct {
	// Blooms enables per-column Bloom filters for equality-friendly
	// kinds (int64, string, date, bool; floats are excluded — equality
	// predicates on floats are rare and their zone maps still apply).
	Blooms bool
	// BloomBitsPerRow sizes the filters; 10 bits/row gives ≈1% false
	// positives, and a false positive only costs an extra fetch, never
	// a wrong result.
	BloomBitsPerRow int
}

// DefaultOptions enables Bloom filters at 10 bits per row.
func DefaultOptions() Options { return Options{Blooms: true, BloomBitsPerRow: 10} }

// bloomKind reports whether a column kind gets a Bloom filter.
func bloomKind(k tuple.Kind) bool { return k != tuple.KindFloat64 }

// Collect computes the zone maps (and, per opt, Bloom filters) of a
// relation from its segments. The segments must be in the relation's
// object order and their rows must match the schema.
func Collect(name string, schema *tuple.Schema, segs []*segment.Segment, opt Options) *Table {
	t := &Table{Name: name, Schema: schema, Segments: make([]SegmentStats, len(segs))}
	for si, sg := range segs {
		ss := SegmentStats{Rows: int64(len(sg.Rows)), Cols: make([]ColumnStats, schema.Len())}
		for ci, col := range schema.Cols {
			cs := &ss.Cols[ci]
			if opt.Blooms && bloomKind(col.Kind) {
				cs.Bloom = NewBloom(len(sg.Rows), opt.BloomBitsPerRow)
			}
			for _, row := range sg.Rows {
				v := row[ci]
				if !cs.HasRange {
					cs.Min, cs.Max, cs.HasRange = v, v, true
				} else {
					if tuple.Compare(v, cs.Min) < 0 {
						cs.Min = v
					}
					if tuple.Compare(v, cs.Max) > 0 {
						cs.Max = v
					}
				}
				if cs.Bloom != nil {
					cs.Bloom.Add(v.Hash())
				}
			}
		}
		t.Segments[si] = ss
	}
	return t
}

// RowCount sums the per-segment row counts.
func (t *Table) RowCount() int64 {
	var n int64
	for _, s := range t.Segments {
		n += s.Rows
	}
	return n
}

// String renders a short summary for diagnostics.
func (t *Table) String() string {
	return fmt.Sprintf("stats(%s: %d segments, %d rows)", t.Name, len(t.Segments), t.RowCount())
}
