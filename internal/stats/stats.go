// Package stats implements the segment-statistics and data-skipping
// subsystem: per-segment zone maps (min/max per column plus row and null
// counts) and optional Bloom filters for equality columns. Statistics
// are computed once, when a relation is generated or loaded, and live
// with the catalog on the database VM — like the paper's catalog files
// they are local metadata, never objects on the cold storage device — so
// both engines can prove, before issuing a single GET, that a segment
// cannot contain a row satisfying a query's table-local predicates. On a
// CSD, where one avoided fetch saves a bandwidth-bound transfer and
// possibly a group switch, that proof is worth far more than the few
// bytes of metadata it costs.
package stats

import (
	"fmt"

	"repro/internal/segment"
	"repro/internal/tuple"
)

// ColumnStats is the zone-map entry of one column within one segment.
type ColumnStats struct {
	// Min and Max bound the column's values in the segment. They are
	// only meaningful when HasRange is true.
	Min, Max tuple.Value
	// HasRange reports whether the segment holds at least one row (the
	// engine has no NULLs, so a row always contributes to the range).
	HasRange bool
	// Nulls counts NULL values. This engine has no NULLs, so the field
	// is always zero; it is kept so the metadata format matches what a
	// real system would persist.
	Nulls int64
	// Bloom, when non-nil, summarizes the exact value set for equality
	// probes. It is built only for equality-friendly kinds (everything
	// but float64).
	Bloom *Bloom
}

// SegmentStats bundles the zone maps of one segment.
type SegmentStats struct {
	// Rows is the segment's row count.
	Rows int64
	// Cols holds one entry per schema column, in schema order.
	Cols []ColumnStats
}

// Table is the catalog-side statistics of one relation: one SegmentStats
// per backing object, aligned with the catalog's object order
// (Segments[i] describes the relation's i-th object).
type Table struct {
	// Name is the relation name, for diagnostics.
	Name string
	// Schema describes the columns the per-segment entries cover.
	Schema *tuple.Schema
	// Segments holds the per-segment zone maps in object order.
	Segments []SegmentStats
}

// Options controls what Collect computes.
type Options struct {
	// Blooms enables per-column Bloom filters for equality-friendly
	// kinds (int64, string, date, bool; floats are excluded — equality
	// predicates on floats are rare and their zone maps still apply).
	Blooms bool
	// BloomBitsPerRow sizes the filters; 10 bits/row gives ≈1% false
	// positives, and a false positive only costs an extra fetch, never
	// a wrong result.
	BloomBitsPerRow int
}

// DefaultOptions enables Bloom filters at 10 bits per row.
func DefaultOptions() Options { return Options{Blooms: true, BloomBitsPerRow: 10} }

// bloomKind reports whether a column kind gets a Bloom filter.
func bloomKind(k tuple.Kind) bool { return k != tuple.KindFloat64 }

// Collect computes the zone maps (and, per opt, Bloom filters) of a
// relation from its segments. The segments must be in the relation's
// object order and their rows must match the schema. It panics on a
// corrupt lazy segment; use CollectChecked to handle that as an error.
func Collect(name string, schema *tuple.Schema, segs []*segment.Segment, opt Options) *Table {
	t, err := CollectChecked(name, schema, segs, opt)
	if err != nil {
		panic(err)
	}
	return t
}

// CollectChecked is Collect with decode errors surfaced. Materialized
// segments are scanned row by row as before. Lazy v2 segments take the
// fast path: min/max, row and null counts come straight from the column
// directory — no block is touched for the zone maps — and only the
// Bloom-filtered columns are decoded, one block at a time, never as rows.
func CollectChecked(name string, schema *tuple.Schema, segs []*segment.Segment, opt Options) (*Table, error) {
	t := &Table{Name: name, Schema: schema, Segments: make([]SegmentStats, len(segs))}
	for si, sg := range segs {
		if dir := sg.Directory(); dir != nil {
			ss, err := segmentStatsFromDirectory(schema, sg, dir, opt)
			if err != nil {
				return nil, fmt.Errorf("stats: %s segment %d: %w", name, si, err)
			}
			t.Segments[si] = ss
			continue
		}
		rows := sg.Rows
		if sg.Lazy() {
			// A lazy v1 segment has no directory; materialize and scan.
			var err error
			if rows, err = sg.Materialize(schema); err != nil {
				return nil, fmt.Errorf("stats: %s segment %d: %w", name, si, err)
			}
		}
		ss := SegmentStats{Rows: int64(len(rows)), Cols: make([]ColumnStats, schema.Len())}
		for ci, col := range schema.Cols {
			cs := &ss.Cols[ci]
			if opt.Blooms && bloomKind(col.Kind) {
				cs.Bloom = NewBloom(len(rows), opt.BloomBitsPerRow)
			}
			for _, row := range rows {
				v := row[ci]
				if !cs.HasRange {
					cs.Min, cs.Max, cs.HasRange = v, v, true
				} else {
					if tuple.Compare(v, cs.Min) < 0 {
						cs.Min = v
					}
					if tuple.Compare(v, cs.Max) > 0 {
						cs.Max = v
					}
				}
				if cs.Bloom != nil {
					cs.Bloom.Add(v.Hash())
				}
			}
		}
		t.Segments[si] = ss
	}
	return t, nil
}

// segmentStatsFromDirectory builds one segment's statistics from a v2
// column directory: zone maps are copied verbatim (the encoder computed
// them in the same pass that wrote the blocks), and Bloom filters decode
// just their own column's block via the projected decoder.
func segmentStatsFromDirectory(schema *tuple.Schema, sg *segment.Segment, dir []segment.ColumnMeta, opt Options) (SegmentStats, error) {
	ss := SegmentStats{Rows: int64(sg.NumRows()), Cols: make([]ColumnStats, schema.Len())}
	var cd *segment.ColumnData
	for ci, col := range schema.Cols {
		cs := &ss.Cols[ci]
		cs.Min, cs.Max, cs.HasRange, cs.Nulls = dir[ci].Min, dir[ci].Max, dir[ci].HasRange, dir[ci].Nulls
		if !opt.Blooms || !bloomKind(col.Kind) {
			continue
		}
		var err error
		cd, err = sg.DecodeColumns(schema, []int{ci}, cd)
		if err != nil {
			return SegmentStats{}, err
		}
		cs.Bloom = NewBloom(cd.NumRows, opt.BloomBitsPerRow)
		for _, v := range cd.Cols[ci] {
			cs.Bloom.Add(v.Hash())
		}
	}
	return ss, nil
}

// RowCount sums the per-segment row counts.
func (t *Table) RowCount() int64 {
	var n int64
	for _, s := range t.Segments {
		n += s.Rows
	}
	return n
}

// String renders a short summary for diagnostics.
func (t *Table) String() string {
	return fmt.Sprintf("stats(%s: %d segments, %d rows)", t.Name, len(t.Segments), t.RowCount())
}
