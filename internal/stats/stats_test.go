package stats

import (
	"math/rand"
	"testing"

	"repro/internal/segment"
	"repro/internal/tuple"
)

var testSchema = tuple.NewSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt64},
	tuple.Column{Name: "d", Kind: tuple.KindDate},
	tuple.Column{Name: "s", Kind: tuple.KindString},
	tuple.Column{Name: "f", Kind: tuple.KindFloat64},
)

func testSegments(rng *rand.Rand, nSegs, rowsPer int) []*segment.Segment {
	var segs []*segment.Segment
	for si := 0; si < nSegs; si++ {
		rows := make([]tuple.Row, rowsPer)
		for i := range rows {
			rows[i] = tuple.Row{
				tuple.Int(int64(si*100 + rng.Intn(50))),
				tuple.DateFromDays(int64(8000 + si*30 + rng.Intn(25))),
				tuple.Str(string(rune('a'+si)) + string(rune('a'+rng.Intn(4)))),
				tuple.Float(float64(si) + rng.Float64()),
			}
		}
		segs = append(segs, &segment.Segment{
			ID:   segment.ObjectID{Table: "t", Index: si},
			Rows: rows,
		})
	}
	return segs
}

func TestCollectZoneMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs := testSegments(rng, 3, 20)
	tab := Collect("t", testSchema, segs, DefaultOptions())
	if len(tab.Segments) != 3 {
		t.Fatalf("segments = %d", len(tab.Segments))
	}
	for si, ss := range tab.Segments {
		if ss.Rows != 20 {
			t.Fatalf("segment %d rows = %d", si, ss.Rows)
		}
		for ci := range testSchema.Cols {
			cs := ss.Cols[ci]
			if !cs.HasRange {
				t.Fatalf("segment %d col %d has no range", si, ci)
			}
			if cs.Nulls != 0 {
				t.Fatalf("segment %d col %d nulls = %d", si, ci, cs.Nulls)
			}
			for _, row := range segs[si].Rows {
				v := row[ci]
				if tuple.Compare(v, cs.Min) < 0 || tuple.Compare(v, cs.Max) > 0 {
					t.Fatalf("segment %d col %d: %v outside [%v, %v]", si, ci, v, cs.Min, cs.Max)
				}
				if cs.Bloom != nil && !cs.Bloom.MayContain(v.Hash()) {
					t.Fatalf("segment %d col %d: bloom false negative for %v", si, ci, v)
				}
			}
		}
		// Floats get zone maps but no Bloom; the others get both.
		if ss.Cols[3].Bloom != nil {
			t.Fatal("float column got a Bloom filter")
		}
		if ss.Cols[0].Bloom == nil || ss.Cols[2].Bloom == nil {
			t.Fatal("int/string column missing a Bloom filter")
		}
	}
}

func TestCollectEmptySegment(t *testing.T) {
	segs := []*segment.Segment{{ID: segment.ObjectID{Table: "t"}}}
	tab := Collect("t", testSchema, segs, DefaultOptions())
	if tab.Segments[0].Rows != 0 || tab.Segments[0].Cols[0].HasRange {
		t.Fatalf("empty segment stats: %+v", tab.Segments[0])
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBloom(1000, 10)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		b.Add(keys[i])
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	// FPR sanity: at 10 bits/key the false-positive rate should be low.
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(rng.Uint64()) {
			fp++
		}
	}
	if fp > probes/20 { // 5%, far above the ≈1% expectation
		t.Fatalf("false positive rate %d/%d too high", fp, probes)
	}
}
