package stats

// Bloom is a Bloom filter over 64-bit value hashes (tuple.Value.Hash),
// probed with double hashing. It answers "might this exact value occur
// in the segment?" — a false positive only costs a fetch that the zone
// map could not rule out anyway; a false negative is impossible, so
// skipping on a negative answer is always result-safe.
type Bloom struct {
	bits []uint64
	m    uint64 // bit count, a multiple of 64
	k    int    // probes per key
}

// bloomMix derives the second hash for double hashing (the golden-ratio
// multiplier decorrelates it from the first).
const bloomMix = 0x9E3779B97F4A7C15

// NewBloom sizes a filter for n keys at bitsPerKey bits each. The probe
// count follows the standard k ≈ 0.69·bits/key optimum, clamped to
// [1, 8].
func NewBloom(n, bitsPerKey int) *Bloom {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	m := (uint64(n)*uint64(bitsPerKey) + 63) &^ 63
	if m < 64 {
		m = 64
	}
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Bloom{bits: make([]uint64, m/64), m: m, k: k}
}

// Add inserts a value hash.
func (b *Bloom) Add(h uint64) {
	h2 := h*bloomMix | 1
	for i := 0; i < b.k; i++ {
		bit := h % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
		h += h2
	}
}

// MayContain reports whether the hash might have been added. False
// means definitely absent.
func (b *Bloom) MayContain(h uint64) bool {
	h2 := h*bloomMix | 1
	for i := 0; i < b.k; i++ {
		bit := h % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h += h2
	}
	return true
}

// Bits returns the filter's size in bits.
func (b *Bloom) Bits() int { return int(b.m) }
