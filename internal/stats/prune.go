package stats

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// Pruner decides, from catalog-side statistics alone, that a segment of
// one relation cannot contain any row satisfying a predicate — so the
// segment's CSD request can be skipped entirely. Pruning is strictly
// conservative: CanSkip answers true only when the statistics prove the
// predicate false for every possible row of the segment, which is what
// keeps query results byte-identical with pruning on or off.
type Pruner interface {
	// CanSkip reports whether segment seg (an index into the relation's
	// object list) provably holds no row satisfying the predicate.
	CanSkip(seg int) bool
	// Predicate describes the pushed-down predicate for EXPLAIN output.
	Predicate() string
}

// CountSkipped counts the prunable segments among the first n.
func CountSkipped(p Pruner, n int) int {
	if p == nil {
		return 0
	}
	skipped := 0
	for i := 0; i < n; i++ {
		if p.CanSkip(i) {
			skipped++
		}
	}
	return skipped
}

// ForPredicate compiles a schema-bound predicate into a Pruner over the
// relation's statistics. ok is false when the predicate has no prunable
// structure (then every segment must be fetched, exactly as before this
// subsystem existed). Unsupported sub-expressions degrade gracefully:
// inside a conjunction they are ignored (the remaining terms still
// prune); anywhere the semantics would be unsound, compilation fails.
func ForPredicate(pred expr.Expr, schema *tuple.Schema, t *Table) (Pruner, bool) {
	if t == nil {
		return nil, false
	}
	c, ok := compile(pred, schema)
	if !ok {
		return nil, false
	}
	return &predPruner{table: t, cond: c, desc: pred.String()}, true
}

// predPruner evaluates a compiled condition against per-segment stats.
type predPruner struct {
	table *Table
	cond  cond
	desc  string
}

// CanSkip implements Pruner. A segment with zero rows is always
// skippable — it cannot contribute to any result.
func (p *predPruner) CanSkip(seg int) bool {
	if seg < 0 || seg >= len(p.table.Segments) {
		return false
	}
	s := &p.table.Segments[seg]
	if s.Rows == 0 {
		return true
	}
	return p.cond.skip(s)
}

// Predicate implements Pruner.
func (p *predPruner) Predicate() string { return p.desc }

func (p *predPruner) String() string {
	return fmt.Sprintf("prune[%s: %s]", p.table.Name, p.desc)
}

// cond is a compiled prunability test: skip reports that no row of the
// segment can satisfy the originating predicate.
type cond interface {
	skip(s *SegmentStats) bool
}

// compile lowers an expression into a cond; ok=false means the
// expression (or a disjunct of it) cannot be analyzed.
func compile(e expr.Expr, schema *tuple.Schema) (cond, bool) {
	switch v := e.(type) {
	case expr.And:
		// A conjunction skips when ANY analyzable term skips; terms we
		// cannot analyze only lose pruning power, never soundness.
		var terms []cond
		for _, t := range v.Terms {
			if c, ok := compile(t, schema); ok {
				terms = append(terms, c)
			}
		}
		if len(terms) == 0 {
			return nil, false
		}
		return anyCond(terms), true
	case expr.Or:
		// A disjunction skips only when EVERY branch skips, so every
		// branch must be analyzable.
		terms := make([]cond, len(v.Terms))
		for i, t := range v.Terms {
			c, ok := compile(t, schema)
			if !ok {
				return nil, false
			}
			terms[i] = c
		}
		return allCond(terms), true
	case expr.Cmp:
		return compileCmp(v, schema)
	case expr.Between:
		col, ok := asCol(v.E, schema)
		if !ok || !kindsComparable(schema.Cols[col.Idx].Kind, v.Lo.K) || !kindsComparable(schema.Cols[col.Idx].Kind, v.Hi.K) {
			return nil, false
		}
		return betweenCond{col: col.Idx, lo: v.Lo, hi: v.Hi}, true
	case expr.In:
		col, ok := asCol(v.Needle, schema)
		if !ok {
			return nil, false
		}
		kind := schema.Cols[col.Idx].Kind
		for _, m := range v.Set {
			if !kindsComparable(kind, m.K) {
				return nil, false
			}
		}
		return inCond{col: col.Idx, kind: kind, set: v.Set}, true
	case expr.Prefix:
		col, ok := asCol(v.E, schema)
		if !ok || schema.Cols[col.Idx].Kind != tuple.KindString || v.Prefix == "" {
			return nil, false
		}
		return prefixCond{col: col.Idx, prefix: v.Prefix}, true
	case expr.Const:
		// A constant-false predicate empties every segment.
		if v.V.K == tuple.KindBool && !v.V.AsBool() {
			return falseCond{}, true
		}
		return nil, false
	default:
		// NOT, CASE, arithmetic over columns, …: conservatively give up.
		return nil, false
	}
}

// compileCmp handles col⟂const comparisons on either side.
func compileCmp(c expr.Cmp, schema *tuple.Schema) (cond, bool) {
	if col, ok := asCol(c.L, schema); ok {
		if v, ok := asConst(c.R); ok && kindsComparable(schema.Cols[col.Idx].Kind, v.K) {
			return rangeCond{col: col.Idx, kind: schema.Cols[col.Idx].Kind, op: c.Op, v: v}, true
		}
	}
	if col, ok := asCol(c.R, schema); ok {
		if v, ok := asConst(c.L); ok && kindsComparable(schema.Cols[col.Idx].Kind, v.K) {
			return rangeCond{col: col.Idx, kind: schema.Cols[col.Idx].Kind, op: flipCmp(c.Op), v: v}, true
		}
	}
	return nil, false
}

// flipCmp mirrors an operator across its operands: (v op col) becomes
// (col flip(op) v).
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default: // EQ, NE are symmetric
		return op
	}
}

// asCol recognizes a plain column reference within schema bounds.
func asCol(e expr.Expr, schema *tuple.Schema) (expr.Col, bool) {
	c, ok := e.(expr.Col)
	if !ok || c.Idx < 0 || c.Idx >= schema.Len() {
		return expr.Col{}, false
	}
	return c, true
}

// asConst recognizes a literal operand.
func asConst(e expr.Expr) (tuple.Value, bool) {
	c, ok := e.(expr.Const)
	if !ok {
		return tuple.Value{}, false
	}
	return c.V, true
}

// kindsComparable reports whether tuple.Compare is defined for a column of
// kind a against a literal of kind b: strings only compare to strings,
// numeric kinds (int, float, date, bool) compare among themselves.
func kindsComparable(a, b tuple.Kind) bool {
	return (a == tuple.KindString) == (b == tuple.KindString)
}

// hashCompatible reports whether a literal's Hash matches how values of
// the column kind hash, which is what Bloom probes require: string and
// float hash their own payloads; int, date and bool share one integer
// hash.
func hashCompatible(col tuple.Kind, v tuple.Value) bool {
	if col == tuple.KindString || v.K == tuple.KindString {
		return col == tuple.KindString && v.K == tuple.KindString
	}
	if col == tuple.KindFloat64 || v.K == tuple.KindFloat64 {
		return col == tuple.KindFloat64 && v.K == tuple.KindFloat64
	}
	return true
}

// anyCond skips when any member skips (conjunction).
type anyCond []cond

func (a anyCond) skip(s *SegmentStats) bool {
	for _, c := range a {
		if c.skip(s) {
			return true
		}
	}
	return false
}

// allCond skips when every member skips (disjunction).
type allCond []cond

func (a allCond) skip(s *SegmentStats) bool {
	for _, c := range a {
		if !c.skip(s) {
			return false
		}
	}
	return true
}

// falseCond skips unconditionally.
type falseCond struct{}

func (falseCond) skip(*SegmentStats) bool { return true }

// colStats fetches the zone map of col, nil when out of range.
func colStats(s *SegmentStats, col int) *ColumnStats {
	if col < 0 || col >= len(s.Cols) {
		return nil
	}
	return &s.Cols[col]
}

// rangeCond prunes a single comparison against a literal.
type rangeCond struct {
	col  int
	kind tuple.Kind
	op   expr.CmpOp
	v    tuple.Value
}

func (r rangeCond) skip(s *SegmentStats) bool {
	cs := colStats(s, r.col)
	if cs == nil || !cs.HasRange {
		return false
	}
	switch r.op {
	case expr.EQ:
		return skipEqual(cs, r.kind, r.v)
	case expr.NE:
		// Only prunable when the whole segment equals v.
		return tuple.Compare(cs.Min, r.v) == 0 && tuple.Compare(cs.Max, r.v) == 0
	case expr.LT:
		return tuple.Compare(cs.Min, r.v) >= 0
	case expr.LE:
		return tuple.Compare(cs.Min, r.v) > 0
	case expr.GT:
		return tuple.Compare(cs.Max, r.v) <= 0
	case expr.GE:
		return tuple.Compare(cs.Max, r.v) < 0
	}
	return false
}

// skipEqual is the shared equality test: outside the zone-map range, or
// rejected by the Bloom filter.
func skipEqual(cs *ColumnStats, kind tuple.Kind, v tuple.Value) bool {
	if tuple.Compare(v, cs.Min) < 0 || tuple.Compare(v, cs.Max) > 0 {
		return true
	}
	return cs.Bloom != nil && hashCompatible(kind, v) && !cs.Bloom.MayContain(v.Hash())
}

// betweenCond prunes lo ≤ col ≤ hi.
type betweenCond struct {
	col    int
	lo, hi tuple.Value
}

func (b betweenCond) skip(s *SegmentStats) bool {
	cs := colStats(s, b.col)
	if cs == nil || !cs.HasRange {
		return false
	}
	return tuple.Compare(cs.Max, b.lo) < 0 || tuple.Compare(cs.Min, b.hi) > 0
}

// inCond prunes membership in a literal set: skippable only when every
// member is individually impossible. An empty IN list matches nothing.
type inCond struct {
	col  int
	kind tuple.Kind
	set  []tuple.Value
}

func (in inCond) skip(s *SegmentStats) bool {
	cs := colStats(s, in.col)
	if cs == nil || !cs.HasRange {
		return false
	}
	for _, v := range in.set {
		if !skipEqual(cs, in.kind, v) {
			return false
		}
	}
	return true
}

// prefixCond prunes LIKE 'p%': matching strings lie in [p, succ(p)).
type prefixCond struct {
	col    int
	prefix string
}

func (p prefixCond) skip(s *SegmentStats) bool {
	cs := colStats(s, p.col)
	if cs == nil || !cs.HasRange || cs.Min.K != tuple.KindString {
		return false
	}
	if tuple.Compare(cs.Max, tuple.Str(p.prefix)) < 0 {
		return true
	}
	if up, ok := prefixSucc(p.prefix); ok && tuple.Compare(cs.Min, tuple.Str(up)) >= 0 {
		return true
	}
	return false
}

// prefixSucc returns the smallest string greater than every string with
// the given prefix (increment the last non-0xff byte, dropping what
// follows). ok is false when no such bound exists (all-0xff prefixes).
func prefixSucc(p string) (string, bool) {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
