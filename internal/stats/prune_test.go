package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// prunerFor compiles a predicate over the test schema/table or fails.
func prunerFor(t *testing.T, tab *Table, pred expr.Expr) Pruner {
	t.Helper()
	p, ok := ForPredicate(pred, testSchema, tab)
	if !ok {
		t.Fatalf("predicate %s not prunable", pred)
	}
	return p
}

// TestPruneSoundness is the core guarantee: whenever CanSkip says true,
// no row of that segment satisfies the predicate. It drives a grammar of
// randomized predicates over randomized segments and cross-checks every
// skip decision against brute-force evaluation.
func TestPruneSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		segs := testSegments(rng, 4, 12)
		tab := Collect("t", testSchema, segs, DefaultOptions())
		for trial := 0; trial < 40; trial++ {
			pred := randPredicate(rng, 2)
			p, ok := ForPredicate(pred, testSchema, tab)
			if !ok {
				continue
			}
			for si, sg := range segs {
				if !p.CanSkip(si) {
					continue
				}
				for _, row := range sg.Rows {
					match, err := expr.EvalBool(pred, row)
					if err != nil {
						t.Fatalf("round %d trial %d: eval %s: %v", round, trial, pred, err)
					}
					if match {
						t.Fatalf("round %d trial %d: segment %d skipped but %s matches row %s",
							round, trial, si, pred, row)
					}
				}
			}
		}
	}
}

// randPredicate generates a predicate from the prunable grammar plus a
// few non-prunable constructs (which must compile to ok=false or stay
// conservative inside conjunctions).
func randPredicate(rng *rand.Rand, depth int) expr.Expr {
	if depth > 0 && rng.Intn(3) == 0 {
		terms := []expr.Expr{randPredicate(rng, depth-1), randPredicate(rng, depth-1)}
		if rng.Intn(2) == 0 {
			return expr.NewAnd(terms...)
		}
		return expr.NewOr(terms...)
	}
	col := rng.Intn(4)
	switch col {
	case 0: // int column
		v := tuple.Int(int64(rng.Intn(400)))
		return randCmp(rng, expr.NewCol(0, "k"), v)
	case 1: // date column
		v := tuple.DateFromDays(int64(8000 + rng.Intn(150)))
		return randCmp(rng, expr.NewCol(1, "d"), v)
	case 2: // string column
		if rng.Intn(3) == 0 {
			return expr.Prefix{E: expr.NewCol(2, "s"), Prefix: string(rune('a' + rng.Intn(6)))}
		}
		if rng.Intn(3) == 0 {
			set := make([]tuple.Value, 1+rng.Intn(3))
			for i := range set {
				set[i] = tuple.Str(string(rune('a'+rng.Intn(6))) + string(rune('a'+rng.Intn(6))))
			}
			return expr.In{Needle: expr.NewCol(2, "s"), Set: set}
		}
		v := tuple.Str(string(rune('a'+rng.Intn(6))) + string(rune('a'+rng.Intn(6))))
		return randCmp(rng, expr.NewCol(2, "s"), v)
	default: // float column
		v := tuple.Float(rng.Float64() * 5)
		if rng.Intn(2) == 0 {
			return expr.Between{E: expr.NewCol(3, "f"), Lo: tuple.Float(0.5), Hi: v}
		}
		return randCmp(rng, expr.NewCol(3, "f"), v)
	}
}

func randCmp(rng *rand.Rand, col expr.Col, v tuple.Value) expr.Expr {
	op := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}[rng.Intn(6)]
	if rng.Intn(2) == 0 {
		// Literal on the left exercises operand flipping.
		return expr.Cmp{Op: op, L: expr.Lit(v), R: col}
	}
	return expr.Cmp{Op: op, L: col, R: expr.Lit(v)}
}

// TestPruneBoundaries pins the inclusive/exclusive edges: predicates at
// exactly a segment's min or max must keep the segment, one past them
// must skip it.
func TestPruneBoundaries(t *testing.T) {
	rows := make([]tuple.Row, 5)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.Int(int64(10 + i)), // k ∈ [10, 14]
			tuple.DateFromDays(int64(100 + i)),
			tuple.Str("mm"),
			tuple.Float(1),
		}
	}
	tab := Collect("t", testSchema, segsOf(rows), DefaultOptions())
	k := expr.NewCol(0, "k")
	cases := []struct {
		pred expr.Expr
		skip bool
	}{
		{expr.Cmp{Op: expr.EQ, L: k, R: expr.Lit(tuple.Int(10))}, false}, // min itself
		{expr.Cmp{Op: expr.EQ, L: k, R: expr.Lit(tuple.Int(14))}, false}, // max itself
		{expr.Cmp{Op: expr.EQ, L: k, R: expr.Lit(tuple.Int(9))}, true},
		{expr.Cmp{Op: expr.EQ, L: k, R: expr.Lit(tuple.Int(15))}, true},
		{expr.Cmp{Op: expr.LT, L: k, R: expr.Lit(tuple.Int(10))}, true},
		{expr.Cmp{Op: expr.LE, L: k, R: expr.Lit(tuple.Int(10))}, false},
		{expr.Cmp{Op: expr.GT, L: k, R: expr.Lit(tuple.Int(14))}, true},
		{expr.Cmp{Op: expr.GE, L: k, R: expr.Lit(tuple.Int(14))}, false},
		{expr.Between{E: k, Lo: tuple.Int(14), Hi: tuple.Int(99)}, false}, // touches max
		{expr.Between{E: k, Lo: tuple.Int(15), Hi: tuple.Int(99)}, true},
		{expr.Between{E: k, Lo: tuple.Int(0), Hi: tuple.Int(10)}, false}, // touches min
		{expr.Between{E: k, Lo: tuple.Int(0), Hi: tuple.Int(9)}, true},
	}
	for i, tc := range cases {
		p := prunerFor(t, tab, tc.pred)
		if got := p.CanSkip(0); got != tc.skip {
			t.Errorf("case %d %s: CanSkip = %v, want %v", i, tc.pred, got, tc.skip)
		}
	}
}

// segsOf wraps rows into a single test segment.
func segsOf(rows []tuple.Row) []*segment.Segment {
	return []*segment.Segment{{ID: segment.ObjectID{Table: "t"}, Rows: rows}}
}

// TestPruneUnanalyzable checks the conservative fallbacks: NOT and
// column-vs-column comparisons are not prunable alone, an OR with an
// unanalyzable branch is not prunable, but an AND keeps pruning on its
// analyzable terms.
func TestPruneUnanalyzable(t *testing.T) {
	rows := []tuple.Row{{tuple.Int(5), tuple.DateFromDays(1), tuple.Str("aa"), tuple.Float(0)}}
	tab := Collect("t", testSchema, segsOf(rows), DefaultOptions())
	colCol := expr.Cmp{Op: expr.LT, L: expr.NewCol(0, "k"), R: expr.NewCol(1, "d")}
	if _, ok := ForPredicate(colCol, testSchema, tab); ok {
		t.Fatal("column-vs-column comparison compiled")
	}
	if _, ok := ForPredicate(expr.Not{E: expr.True}, testSchema, tab); ok {
		t.Fatal("NOT compiled")
	}
	tight := expr.Cmp{Op: expr.GT, L: expr.NewCol(0, "k"), R: expr.Lit(tuple.Int(100))}
	if _, ok := ForPredicate(expr.NewOr(tight, colCol), testSchema, tab); ok {
		t.Fatal("OR with unanalyzable branch compiled")
	}
	p, ok := ForPredicate(expr.NewAnd(colCol, tight), testSchema, tab)
	if !ok {
		t.Fatal("AND with one analyzable term did not compile")
	}
	if !p.CanSkip(0) {
		t.Fatal("AND did not prune on its analyzable term")
	}
}

// TestPruneEmptySegmentAlwaysSkips: a zero-row segment can always be
// skipped, whatever the predicate.
func TestPruneEmptySegmentAlwaysSkips(t *testing.T) {
	tab := Collect("t", testSchema, []*segment.Segment{{ID: segment.ObjectID{Table: "t"}}}, DefaultOptions())
	p := prunerFor(t, tab, expr.Cmp{Op: expr.GE, L: expr.NewCol(0, "k"), R: expr.Lit(tuple.Int(0))})
	if !p.CanSkip(0) {
		t.Fatal("empty segment not skipped")
	}
	if p.CanSkip(1) || p.CanSkip(-1) {
		t.Fatal("out-of-range segment index skipped")
	}
}

// TestBloomPruning: an equality inside the zone-map range is still
// skippable when the Bloom filter proves the value absent.
func TestBloomPruning(t *testing.T) {
	// Only even keys: odd probes fall inside [0, 98] but miss the Bloom.
	rows := make([]tuple.Row, 50)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int(int64(2 * i)), tuple.DateFromDays(0), tuple.Str("x"), tuple.Float(0)}
	}
	tab := Collect("t", testSchema, segsOf(rows), DefaultOptions())
	skipped := 0
	for probe := int64(1); probe < 99; probe += 2 {
		p := prunerFor(t, tab, expr.Cmp{Op: expr.EQ, L: expr.NewCol(0, "k"), R: expr.Lit(tuple.Int(probe))})
		if p.CanSkip(0) {
			skipped++
		}
	}
	// ≈1% FPR at 10 bits/key: the vast majority of absent probes skip.
	if skipped < 40 {
		t.Fatalf("bloom skipped only %d/49 absent probes", skipped)
	}
	// Present values must never skip.
	for probe := int64(0); probe < 100; probe += 2 {
		p := prunerFor(t, tab, expr.Cmp{Op: expr.EQ, L: expr.NewCol(0, "k"), R: expr.Lit(tuple.Int(probe))})
		if p.CanSkip(0) {
			t.Fatalf("present value %d pruned", probe)
		}
	}
}

// TestPrefixPruning pins the LIKE 'p%' bounds, including the succ edge.
func TestPrefixPruning(t *testing.T) {
	rows := []tuple.Row{
		{tuple.Int(0), tuple.DateFromDays(0), tuple.Str("carrot"), tuple.Float(0)},
		{tuple.Int(0), tuple.DateFromDays(0), tuple.Str("cherry"), tuple.Float(0)},
	}
	tab := Collect("t", testSchema, segsOf(rows), DefaultOptions())
	cases := []struct {
		prefix string
		skip   bool
	}{
		{"c", false},
		{"ca", false},
		{"ch", false},
		{"b", true},   // every value sorts above the prefix range
		{"d", true},   // every value sorts below the prefix range
		{"cz", true},  // max "cherry" < "cz"
		{"ce", false}, // nothing matches, but [min,max] straddles "ce": not provable from the range
	}
	for _, tc := range cases {
		pred := expr.Prefix{E: expr.NewCol(2, "s"), Prefix: tc.prefix}
		p, ok := ForPredicate(pred, testSchema, tab)
		if !ok {
			t.Fatalf("prefix %q not prunable", tc.prefix)
		}
		if got := p.CanSkip(0); got != tc.skip {
			t.Errorf("prefix %q: CanSkip = %v, want %v", tc.prefix, got, tc.skip)
		}
	}
	if got := fmt.Sprint(p0(t, tab).Predicate()); got == "" {
		t.Fatal("empty predicate description")
	}
}

func p0(t *testing.T, tab *Table) Pruner {
	return prunerFor(t, tab, expr.Prefix{E: expr.NewCol(2, "s"), Prefix: "c"})
}
