// Package engine implements a pull-based, Volcano-style query executor —
// the stand-in for vanilla PostgreSQL in the paper's experiments. Its
// defining property for this study is the execution protocol: operators
// pull tuples in optimizer-chosen plan order, which makes the storage
// layer fetch one segment at a time in a fixed sequence. On a CSD this
// pull-based order conflicts with the device's preferred group-by-group
// service order and triggers the S·C·D group-switch blow-up of §3.2.
package engine

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tuple"
)

// Clock abstracts virtual time so operators can charge processing costs.
// vtime.Proc satisfies it; tests use a fake.
type Clock interface {
	// Sleep advances the clock by d (blocking on a simulated clock).
	Sleep(d time.Duration)
}

// NopClock ignores all charges; used by pure correctness tests.
type NopClock struct{}

// Sleep implements Clock.
func (NopClock) Sleep(time.Duration) {}

// Fetcher retrieves one segment by object id. The vanilla path issues a
// synchronous GET to the CSD; tests fetch from a map.
type Fetcher interface {
	// Fetch retrieves one segment, blocking until it is available.
	Fetch(id segment.ObjectID) (*segment.Segment, error)
}

// TryFetcher is an optional Fetcher extension for pipelined scans:
// TryFetch returns a segment only when it is immediately available — in
// memory, cache-resident, or already prefetched — without ever blocking
// on storage. Pipelined scans use it to read ahead: a segment that would
// block is simply not read ahead (ok=false), so read-ahead never changes
// when the consumer waits, only what it finds decoded when it stops
// waiting.
type TryFetcher interface {
	// TryFetch returns (seg, true, nil) when the object is immediately
	// available, (nil, false, nil) when fetching it would block, and a
	// non-nil error only on a real fetch failure.
	TryFetch(id segment.ObjectID) (*segment.Segment, bool, error)
}

// MapFetcher serves segments from memory with no cost.
type MapFetcher map[segment.ObjectID]*segment.Segment

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(id segment.ObjectID) (*segment.Segment, error) {
	sg, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("engine: object %v not found", id)
	}
	return sg, nil
}

// TryFetch implements TryFetcher: an in-memory store never blocks, so
// every object is read-ahead eligible.
func (m MapFetcher) TryFetch(id segment.ObjectID) (*segment.Segment, bool, error) {
	sg, err := m.Fetch(id)
	if err != nil {
		return nil, false, err
	}
	return sg, true, nil
}

// Costs charges virtual processing time. ProcessPerObject is the per-1-GB-
// segment query-processing cost; the paper's Table 3 implies ≈7.14 s
// (407 s of query execution over 57 objects).
type Costs struct {
	// ProcessPerObject is charged once per fetched segment.
	ProcessPerObject time.Duration
}

// DefaultCosts returns the Table 3 calibration.
func DefaultCosts() Costs {
	return Costs{ProcessPerObject: 7140 * time.Millisecond}
}

// Ctx carries the execution environment through the operator tree.
type Ctx struct {
	// Clock receives virtual processing-time charges.
	Clock Clock
	// Fetch supplies segments to the scans.
	Fetch Fetcher
	// Costs calibrates the charges.
	Costs Costs
	// Pipe, when non-nil with a Pool, turns the scans asynchronous: each
	// scan reads ahead up to Pipe.Depth immediately-available segments
	// (Fetch must implement TryFetcher for read-ahead to engage) and
	// decodes them on the pool's workers, so decode overlaps compute in
	// real time. Row streams are byte-identical with and without it; the
	// virtual-time interleaving of fetch charges may shift (reads happen
	// earlier) while per-segment totals are unchanged.
	Pipe *Pipeline
	// Trace, when non-nil, receives per-segment fetch and decode spans
	// from the scans. Spans carry wall time only: the engine may be
	// drained from decode workers that do not own a virtual-time proc.
	// nil (the default) records nothing and costs one branch.
	Trace *trace.QueryTrace
}

// NewTestCtx returns a context over an in-memory store with no costs.
func NewTestCtx(store map[segment.ObjectID]*segment.Segment) *Ctx {
	return &Ctx{Clock: NopClock{}, Fetch: MapFetcher(store)}
}

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the operator for iteration.
	Open() error
	// Next returns the next row; ok=false signals exhaustion.
	Next() (row tuple.Row, ok bool, err error)
	// Close releases resources. Close after a failed Open is allowed.
	Close() error
	// Schema describes the output rows.
	Schema() *tuple.Schema
}

// Collect fully drains an iterator and returns all rows. Batch-native
// operators are drained batch-at-a-time; row-only iterators fall back to
// the classic pull loop.
func Collect(it Iterator) ([]tuple.Row, error) {
	if bi, ok := it.(BatchIterator); ok {
		return CollectBatches(bi)
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []tuple.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// SeqScan reads a relation segment by segment, in catalog order — the
// strict plan-order pull that defeats CSD scheduling. It is batch-native:
// NextBatch copies up to DefaultBatchSize rows of the current segment into
// a reused columnar batch; Next serves single rows off the same segment
// cursor, so mixing the two protocols stays consistent and per-segment
// cost charges are identical on both paths.
//
// Against lazily decoded segments (segment.DecodeLazy output) the scan
// performs the decode itself, per segment, and — when Project is set on a
// v2 segment — decodes only the projected column blocks, copying them
// straight into the reused output batch with no intermediate Row
// materialization. Columns outside the projection are filled with typed
// zero values; the planner only sets Project when no downstream operator
// reads them.
type SeqScan struct {
	ctx   *Ctx
	table *catalog.TableMeta

	// Pruner, when non-nil, is consulted before each segment fetch: a
	// segment it proves result-free (from the catalog's zone maps and
	// Bloom filters) is skipped without issuing a GET or charging any
	// processing cost. Because pruning is conservative, the surviving
	// row stream is identical to the unpruned one after the predicate's
	// Filter.
	Pruner stats.Pruner

	// Project lists the schema columns the query references (sorted,
	// possibly empty = none but the row count). nil decodes everything —
	// the conservative default. It only affects lazily decoded segments;
	// materialized segments always carry all columns.
	Project []int

	segIdx  int
	rows    []tuple.Row
	cd      *segment.ColumnData
	nrows   int
	rowIdx  int
	skipped int
	bytes   ScanBytes
	out     *tuple.Batch

	// Pipelined-mode state (ctx.Pipe set): the FIFO of read-ahead
	// segments in flight on the decode pool, the recycled decode buffers
	// (depth+1 in steady state), and the real-time stall accounting.
	ahead  []*scanAhead
	freeCD []*segment.ColumnData
	pstats PipeStats

	ostats *OpStats
	// tr, when non-nil, receives per-segment fetch/decode spans. Set via
	// Ctx.Trace at construction; nil keeps the hot path span-free.
	tr *trace.QueryTrace
}

// scanAhead is one read-ahead segment: fetched, with its decode (lazy
// segments only) in flight on the pool.
type scanAhead struct {
	seg *segment.Segment
	t   *DecodeTicket // nil for non-lazy segments (nothing to decode)
	cd  *segment.ColumnData
	err error
}

// ScanBytes is the scan-side byte accounting of one SeqScan drain. All
// counters are zero over materialized (never-encoded) stores, where the
// scan has no decode work to do.
type ScanBytes struct {
	// Fetched is the total encoded size of the segments fetched.
	Fetched int64
	// Decoded counts encoded block bytes actually decoded.
	Decoded int64
	// SkippedByProjection counts encoded block bytes left undecoded
	// because the projection did not need their columns.
	SkippedByProjection int64
	// Materialized counts the logical bytes of decoded values.
	Materialized int64
	// DecodeTime is the wall-clock time spent decoding segments — the
	// scan-side decode cost the v2 format attacks.
	DecodeTime time.Duration
}

// add accumulates another scan's counters.
func (b *ScanBytes) add(o ScanBytes) {
	b.Fetched += o.Fetched
	b.Decoded += o.Decoded
	b.SkippedByProjection += o.SkippedByProjection
	b.Materialized += o.Materialized
	b.DecodeTime += o.DecodeTime
}

// NewSeqScan builds a sequential scan over the table.
func NewSeqScan(ctx *Ctx, table *catalog.TableMeta) *SeqScan {
	return &SeqScan{ctx: ctx, table: table, tr: ctx.Trace}
}

// Schema implements Iterator.
func (s *SeqScan) Schema() *tuple.Schema { return s.table.Schema }

// Open implements Iterator.
func (s *SeqScan) Open() error {
	s.drainAhead()
	s.segIdx, s.rowIdx, s.nrows, s.rows, s.skipped = 0, 0, 0, nil, 0
	s.bytes = ScanBytes{}
	s.pstats = PipeStats{}
	return nil
}

// drainAhead waits out any in-flight decode jobs and recycles their
// buffers, so a re-Open or Close never leaves a worker writing into
// state the scan is about to reuse.
func (s *SeqScan) drainAhead() {
	for _, job := range s.ahead {
		if job.t != nil {
			job.t.Wait()
			if job.cd != nil {
				s.freeCD = append(s.freeCD, job.cd)
			}
		}
	}
	s.ahead = nil
}

// SegmentsSkipped reports how many segment fetches the Pruner avoided so
// far in this iteration.
func (s *SeqScan) SegmentsSkipped() int { return s.skipped }

// Bytes reports the scan-side byte and decode-time accounting so far in
// this iteration.
func (s *SeqScan) Bytes() ScanBytes { return s.bytes }

// PipeStats reports the scan's real-time pipeline accounting: fetch and
// decode stalls, and decode work overlapped with compute. With ctx.Pipe
// unset the scan still fills DecodeBusy/DecodeStall (decode runs inline,
// so the two are equal) — the pipeline-off baseline of the wall-clock
// comparison.
func (s *SeqScan) PipeStats() PipeStats { return s.pstats }

// loadSegment advances to the next segment holding unread rows, charging
// the per-segment processing cost per fetch; prunable segments are
// passed over without a fetch. Lazy segments are decoded here — only the
// projected column blocks for v2 — into reused buffers. ok=false signals
// exhaustion.
func (s *SeqScan) loadSegment() (ok bool, err error) {
	if s.ctx.Pipe != nil && s.ctx.Pipe.Pool != nil {
		return s.loadSegmentPipelined()
	}
	for s.rowIdx >= s.nrows {
		for s.Pruner != nil && s.segIdx < len(s.table.Objects) && s.Pruner.CanSkip(s.segIdx) {
			s.segIdx++
			s.skipped++
		}
		if s.segIdx >= len(s.table.Objects) {
			return false, nil
		}
		fetchStart := time.Now()
		sg, err := s.ctx.Fetch.Fetch(s.table.Objects[s.segIdx])
		s.pstats.FetchStall += time.Since(fetchStart)
		if s.tr.Enabled() {
			s.tr.Emit(trace.CatFetch, s.table.Objects[s.segIdx].String(), fetchStart)
		}
		if err != nil {
			return false, err
		}
		s.segIdx++
		if sg.Lazy() {
			start := time.Now()
			cd, err := sg.DecodeColumns(s.table.Schema, s.Project, s.cd)
			if s.tr.Enabled() {
				s.tr.Emit(trace.CatDecode, s.table.Objects[s.segIdx-1].String(), start)
			}
			if err != nil {
				return false, err
			}
			d := time.Since(start)
			// Inline decode sits entirely on the critical path: busy and
			// stall coincide — the pipeline-off baseline.
			s.bytes.DecodeTime += d
			s.pstats.DecodeBusy += d
			s.pstats.DecodeStall += d
			s.pstats.Decodes++
			s.bytes.Fetched += sg.EncodedSize()
			s.bytes.Decoded += cd.BytesDecoded
			s.bytes.SkippedByProjection += cd.BytesSkipped
			s.bytes.Materialized += cd.BytesMaterialized
			s.cd, s.rows, s.nrows, s.rowIdx = cd, nil, cd.NumRows, 0
		} else {
			s.cd, s.rows, s.nrows, s.rowIdx = nil, sg.Rows, len(sg.Rows), 0
		}
		// Charge the per-segment processing cost as the segment is
		// consumed.
		s.ctx.Clock.Sleep(s.ctx.Costs.ProcessPerObject)
	}
	return true, nil
}

// loadSegmentPipelined is loadSegment with the asynchronous pipeline on:
// segments are read ahead (TryFetcher permitting) and decoded on the
// pool, and consumption pops the oldest read-ahead slot — strictly in
// fetch order, so the row stream is byte-identical to the serial path.
// The per-segment cost charge still lands at consumption; fetch-side
// charges (FUSE, GET accounting) happen at read-ahead time instead of
// consumption time, shifting their virtual interleaving but never their
// totals. A scan abandoned early (LIMIT) may have read ahead past its
// last consumed segment — those segments count as fetched, exactly like
// a real speculative read.
func (s *SeqScan) loadSegmentPipelined() (bool, error) {
	for s.rowIdx >= s.nrows {
		if err := s.fillAhead(); err != nil {
			return false, err
		}
		if len(s.ahead) == 0 {
			// Nothing immediately available: demand-fetch the next
			// unpruned segment, blocking, then decode it on the pool.
			for s.Pruner != nil && s.segIdx < len(s.table.Objects) && s.Pruner.CanSkip(s.segIdx) {
				s.segIdx++
				s.skipped++
			}
			if s.segIdx >= len(s.table.Objects) {
				return false, nil
			}
			fetchStart := time.Now()
			sg, err := s.ctx.Fetch.Fetch(s.table.Objects[s.segIdx])
			s.pstats.FetchStall += time.Since(fetchStart)
			if s.tr.Enabled() {
				s.tr.Emit(trace.CatFetch, s.table.Objects[s.segIdx].String(), fetchStart)
			}
			if err != nil {
				return false, err
			}
			s.segIdx++
			s.submitAhead(sg)
			// The demand fetch may have made successors available (e.g.
			// the prefetcher delivered meanwhile): top the window up so
			// their decodes start now.
			if err := s.fillAhead(); err != nil {
				return false, err
			}
		}
		job := s.ahead[0]
		copy(s.ahead, s.ahead[1:])
		s.ahead = s.ahead[:len(s.ahead)-1]
		if job.t != nil {
			if job.t.Ready() {
				s.pstats.DecodesOverlapped++
			}
			s.pstats.DecodeStall += job.t.Wait()
			s.pstats.DecodeBusy += job.t.Busy
			s.pstats.Decodes++
			s.bytes.DecodeTime += job.t.Busy
		}
		if job.err != nil {
			return false, job.err
		}
		if s.cd != nil {
			// The previous segment is fully consumed; its buffer feeds the
			// next decode submission.
			s.freeCD = append(s.freeCD, s.cd)
		}
		if job.cd != nil {
			cd := job.cd
			s.bytes.Fetched += job.seg.EncodedSize()
			s.bytes.Decoded += cd.BytesDecoded
			s.bytes.SkippedByProjection += cd.BytesSkipped
			s.bytes.Materialized += cd.BytesMaterialized
			s.cd, s.rows, s.nrows, s.rowIdx = cd, nil, cd.NumRows, 0
		} else {
			s.cd, s.rows, s.nrows, s.rowIdx = nil, job.seg.Rows, len(job.seg.Rows), 0
		}
		s.ctx.Clock.Sleep(s.ctx.Costs.ProcessPerObject)
	}
	return true, nil
}

// fillAhead tops the read-ahead window up to the configured depth with
// immediately-available segments. It never blocks: the window simply
// stays short when the next segment would.
func (s *SeqScan) fillAhead() error {
	tf, ok := s.ctx.Fetch.(TryFetcher)
	if !ok {
		return nil
	}
	depth := s.ctx.Pipe.depth()
	for len(s.ahead) < depth {
		for s.Pruner != nil && s.segIdx < len(s.table.Objects) && s.Pruner.CanSkip(s.segIdx) {
			s.segIdx++
			s.skipped++
		}
		if s.segIdx >= len(s.table.Objects) {
			return nil
		}
		sg, avail, err := tf.TryFetch(s.table.Objects[s.segIdx])
		if err != nil {
			return err
		}
		if !avail {
			return nil
		}
		s.segIdx++
		s.submitAhead(sg)
	}
	return nil
}

// submitAhead appends a fetched segment to the read-ahead FIFO, starting
// its decode on the pool. Each in-flight decode owns its buffer (from
// the recycle list or fresh), so concurrent jobs never share state.
func (s *SeqScan) submitAhead(sg *segment.Segment) {
	job := &scanAhead{seg: sg}
	if sg.Lazy() {
		var reuse *segment.ColumnData
		if n := len(s.freeCD); n > 0 {
			reuse, s.freeCD = s.freeCD[n-1], s.freeCD[:n-1]
		}
		var name string
		if s.tr.Enabled() {
			name = sg.ID.String()
		}
		job.t = s.ctx.Pipe.Pool.Submit(func() {
			t0 := time.Now()
			job.cd, job.err = sg.DecodeColumns(s.table.Schema, s.Project, reuse)
			// Recording from the pool worker is safe: QueryTrace is
			// mutex-guarded, and the span carries wall time only.
			if s.tr.Enabled() {
				s.tr.Emit(trace.CatDecode, name, t0)
			}
		})
	}
	s.ahead = append(s.ahead, job)
}

// Next implements Iterator.
func (s *SeqScan) Next() (tuple.Row, bool, error) {
	ok, err := s.loadSegment()
	if !ok {
		return nil, false, err
	}
	if s.cd != nil {
		row := make(tuple.Row, len(s.cd.Cols))
		for c := range s.cd.Cols {
			if s.cd.Cols[c] == nil {
				row[c] = tuple.Value{K: s.table.Schema.Cols[c].Kind}
			} else {
				row[c] = s.cd.Cols[c][s.rowIdx]
			}
		}
		s.rowIdx++
		return row, true, nil
	}
	row := s.rows[s.rowIdx]
	s.rowIdx++
	return row, true, nil
}

// NextBatch implements BatchIterator. Batches never span a segment
// boundary, so early termination (e.g. under a LIMIT) fetches exactly the
// segments the row path would.
func (s *SeqScan) NextBatch() (*tuple.Batch, bool, error) {
	if s.ostats != nil {
		return timedBatch(s.ostats, s.nextBatch)
	}
	return s.nextBatch()
}

func (s *SeqScan) nextBatch() (*tuple.Batch, bool, error) {
	ok, err := s.loadSegment()
	if !ok {
		return nil, false, err
	}
	if s.cd != nil {
		if s.out == nil {
			s.out = tuple.NewBatch(s.table.Schema, DefaultBatchSize)
		}
		s.out.Reset()
		n := s.nrows - s.rowIdx
		if n > s.out.Cap() {
			n = s.out.Cap()
		}
		s.out.AppendColumns(s.cd.Cols, s.rowIdx, s.rowIdx+n)
		s.rowIdx += n
		return s.out, true, nil
	}
	return serveRowSlice(&s.out, s.table.Schema, s.rows, &s.rowIdx)
}

// Close implements Iterator.
func (s *SeqScan) Close() error {
	s.drainAhead()
	s.rows, s.cd = nil, nil
	return nil
}
