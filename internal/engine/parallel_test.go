package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// diffDOPs are the degrees of parallelism every differential test runs
// at: serial, minimal pool, and more workers than this machine has cores.
var diffDOPs = []int{1, 2, 8}

// collectAtDOP parallelizes the plan and drains it batch-at-a-time.
func collectAtDOP(t *testing.T, plan Iterator, dop int) []tuple.Row {
	t.Helper()
	rows, err := CollectBatches(AsBatch(Parallelize(plan, dop)))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// intFloatTable builds random multi-segment rows whose float column only
// holds integer values: float64 addition over them is exact, so parallel
// SUM/AVG reassociation cannot perturb the result and the comparison
// below can demand bit-identical rows. (Sums of non-representable floats
// differ in the last ulps across DOPs, as in any parallel engine; the
// caveat is documented in docs/tuning.md.)
func intFloatTable(t *testing.T, rng *rand.Rand, name string, n, perSeg int) []*segment.Segment {
	t.Helper()
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.Int(rng.Int63n(50)),
			tuple.Float(float64(rng.Int63n(1000))),
		}
	}
	return segment.Split(0, name, rows, perSeg, 1e9)
}

// TestParallelVsSerialPipelines: the scan→filter→join→agg→sort pipeline
// of the row/batch property suite must produce identical rows (in
// identical order — the Sort pins it) at DOP 1, 2 and 8.
func TestParallelVsSerialPipelines(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := make(map[segment.ObjectID]*segment.Segment)
		cat := catalog.New(0)
		fsegs := intFloatTable(t, rng, "f", 600+rng.Intn(500), 100)
		dsegs := randTable(t, rng, "d", []tuple.Column{
			{Name: "dk", Kind: tuple.KindInt64},
			{Name: "dn", Kind: tuple.KindString},
		}, 80, 30)
		for _, sg := range fsegs {
			store[sg.ID] = sg
		}
		for _, sg := range dsegs {
			store[sg.ID] = sg
		}
		fm := cat.MustAddTable("f", tuple.NewSchema(
			tuple.Column{Name: "fk", Kind: tuple.KindInt64},
			tuple.Column{Name: "fv", Kind: tuple.KindFloat64}), fsegs)
		dm := cat.MustAddTable("d", tuple.NewSchema(
			tuple.Column{Name: "dk", Kind: tuple.KindInt64},
			tuple.Column{Name: "dn", Kind: tuple.KindString}), dsegs)
		ctx := NewTestCtx(store)

		mkPlan := func() Iterator {
			scanF := NewFilter(NewSeqScan(ctx, fm), expr.ColGE(fm.Schema, "fk", tuple.Int(5)))
			join := JoinOn(scanF, NewSeqScan(ctx, dm), [][2]string{{"fk", "dk"}})
			agg := NewHashAgg(join,
				[]GroupCol{{Name: "dn", Kind: tuple.KindString, E: expr.Bind(join.Schema(), "dn")}},
				[]AggSpec{
					{Kind: AggCount, Name: "n"},
					{Kind: AggSum, Arg: expr.Bind(join.Schema(), "fv"), Name: "s"},
					{Kind: AggAvg, Arg: expr.Bind(join.Schema(), "fv"), Name: "a"},
					{Kind: AggMin, Arg: expr.Bind(join.Schema(), "fk"), Name: "lo", ArgKind: tuple.KindInt64},
					{Kind: AggMax, Arg: expr.Bind(join.Schema(), "fk"), Name: "hi", ArgKind: tuple.KindInt64},
				})
			return NewSort(agg, []SortKey{{E: expr.NewCol(0, "dn")}})
		}

		want := renderRows(collectAtDOP(t, mkPlan(), 1))
		if len(want) == 0 {
			t.Fatalf("seed %d: serial plan produced no rows; test is vacuous", seed)
		}
		for _, dop := range diffDOPs[1:] {
			got := renderRows(collectAtDOP(t, mkPlan(), dop))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d dop %d: results differ from serial:\n got %v\nwant %v", seed, dop, got, want)
			}
		}
	}
}

// TestParallelJoinMultisetMatchesSerial checks the bare join (no Sort):
// row order may differ across DOPs, the multiset may not. Duplicate keys
// on both sides exercise the multi-match path.
func TestParallelJoinMultisetMatchesSerial(t *testing.T) {
	rows, sch := benchRowsN(5000) // keys repeat mod 97: heavy duplicates
	mkJoin := func() Iterator {
		return JoinOn(NewValues(sch, rows), NewValues(sch, rows), [][2]string{{"k", "k"}})
	}
	want := renderRows(collectAtDOP(t, mkJoin(), 1))
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("serial join empty; test is vacuous")
	}
	for _, dop := range diffDOPs[1:] {
		got := renderRows(collectAtDOP(t, mkJoin(), dop))
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dop %d: join multiset differs from serial (%d vs %d rows)", dop, len(got), len(want))
		}
	}
}

// TestParallelJoinHashCollisionSafety: values engineered to share hashes
// must still be verified by the parallel probe's equality recheck. Int
// and float values with equal bit patterns hash identically but compare
// unequal across kinds.
func TestParallelJoinHashCollisionSafety(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})
	left := []tuple.Row{{tuple.Int(1)}, {tuple.Int(2)}}
	right := []tuple.Row{{tuple.Int(1)}, {tuple.Int(3)}}
	for _, dop := range diffDOPs {
		join := JoinOn(NewValues(sch, left), NewValues(sch, right), [][2]string{{"k", "k"}})
		got := collectAtDOP(t, join, dop)
		if len(got) != 1 || got[0][0].I != 1 {
			t.Fatalf("dop %d: want single k=1 match, got %v", dop, got)
		}
	}
}

// TestParallelAggDeterministicOutput: HashAgg output is sorted by group
// key, so it must be byte-identical (order included) at every DOP, and
// the global-aggregate zero-row case must still emit its single row.
func TestParallelAggDeterministicOutput(t *testing.T) {
	rows, sch := benchRowsN(10000)
	mkAgg := func(in []tuple.Row) Iterator {
		return NewHashAgg(NewValues(sch, in),
			[]GroupCol{{Name: "k", Kind: tuple.KindInt64, E: expr.Bind(sch, "k")}},
			[]AggSpec{
				{Kind: AggCount, Name: "n"},
				{Kind: AggMin, Arg: expr.Bind(sch, "v"), Name: "lo", ArgKind: tuple.KindString},
				{Kind: AggMax, Arg: expr.Bind(sch, "v"), Name: "hi", ArgKind: tuple.KindString},
			})
	}
	want := renderRows(collectAtDOP(t, mkAgg(rows), 1))
	for _, dop := range diffDOPs[1:] {
		got := renderRows(collectAtDOP(t, mkAgg(rows), dop))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dop %d: agg output differs:\n got %v\nwant %v", dop, got, want)
		}
	}
	// Global aggregate over zero rows: exactly one zero row at any DOP.
	for _, dop := range diffDOPs {
		glob := NewHashAgg(NewValues(sch, nil), nil, []AggSpec{{Kind: AggCount, Name: "n"}})
		got := collectAtDOP(t, glob, dop)
		if len(got) != 1 || got[0][0].I != 0 {
			t.Fatalf("dop %d: zero-row global agg produced %v", dop, got)
		}
	}
}

// TestParallelErrorPropagation: fetch errors must surface through the
// parallel build, probe and aggregation drains just as they do serially.
func TestParallelErrorPropagation(t *testing.T) {
	for _, dop := range diffDOPs {
		// Build side: missing segment on the left.
		lt, lstore := buildTable(t, "l", kvRows(2000), 100)
		delete(lstore, lt.Objects[3])
		rt, rstore := buildTable(t, "r2", kvRows(100), 50)
		for id, sg := range rstore {
			lstore[id] = sg
		}
		ctx := NewTestCtx(lstore)
		join := Parallelize(JoinOn(NewSeqScan(ctx, lt), NewSeqScan(ctx, rt), [][2]string{{"k", "k"}}), dop)
		if err := join.Open(); err == nil {
			join.Close()
			t.Fatalf("dop %d: build-side fetch error not surfaced at Open", dop)
		}

		// Probe side: missing segment on the right, surfaced mid-stream.
		lt2, store2 := buildTable(t, "l2", kvRows(100), 50)
		rt2, rstore2 := buildTable(t, "r3", kvRows(2000), 100)
		for id, sg := range rstore2 {
			store2[id] = sg
		}
		delete(store2, rt2.Objects[5])
		ctx2 := NewTestCtx(store2)
		probe := Parallelize(JoinOn(NewSeqScan(ctx2, lt2), NewSeqScan(ctx2, rt2), [][2]string{{"k", "k"}}), dop)
		if _, err := Collect(probe); err == nil {
			t.Fatalf("dop %d: probe-side fetch error swallowed", dop)
		}

		// Aggregation drain over a broken child.
		at, astore := buildTable(t, "a", kvRows(2000), 100)
		delete(astore, at.Objects[7])
		agg := Parallelize(NewHashAgg(NewSeqScan(NewTestCtx(astore), at), nil,
			[]AggSpec{{Kind: AggCount, Name: "n"}}), dop)
		if _, err := Collect(agg); err == nil {
			t.Fatalf("dop %d: agg drain fetch error swallowed", dop)
		}
	}
}

// TestParallelEmptyInputs: empty build and probe sides terminate cleanly
// at every DOP.
func TestParallelEmptyInputs(t *testing.T) {
	rows, sch := benchRowsN(100)
	for _, dop := range diffDOPs {
		emptyBuild := JoinOn(NewValues(sch, nil), NewValues(sch, rows), [][2]string{{"k", "k"}})
		if got := collectAtDOP(t, emptyBuild, dop); len(got) != 0 {
			t.Fatalf("dop %d: empty build side produced %d rows", dop, len(got))
		}
		emptyProbe := JoinOn(NewValues(sch, rows), NewValues(sch, nil), [][2]string{{"k", "k"}})
		if got := collectAtDOP(t, emptyProbe, dop); len(got) != 0 {
			t.Fatalf("dop %d: empty probe side produced %d rows", dop, len(got))
		}
	}
}

// TestParallelizeWalksPlan: one Parallelize call at the root must reach
// joins and aggregations below other operators and through the adapter
// wrappers, and dop<=1 must normalize to the serial path.
func TestParallelizeWalksPlan(t *testing.T) {
	rows, sch := benchRowsN(10)
	join := JoinOn(NewValues(sch, rows), NewValues(sch, rows), [][2]string{{"k", "k"}})
	agg := NewHashAgg(NewFilter(join, expr.ColGE(sch, "k", tuple.Int(0))), nil,
		[]AggSpec{{Kind: AggCount, Name: "n"}})
	root := &RowAdapter{B: agg}
	Parallelize(root, 8)
	if agg.dop != 8 || join.dop != 8 {
		t.Fatalf("Parallelize did not reach nested operators: agg=%d join=%d", agg.dop, join.dop)
	}
	Parallelize(root, 0)
	if agg.dop != 1 || join.dop != 1 {
		t.Fatalf("dop 0 should normalize to serial, got agg=%d join=%d", agg.dop, join.dop)
	}
}
