package engine

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// countingFetcher counts segment fetches on top of a map store.
type countingFetcher struct {
	store MapFetcher
	n     int
}

func (f *countingFetcher) Fetch(id segment.ObjectID) (*segment.Segment, error) {
	f.n++
	return f.store.Fetch(id)
}

// pruneFixture builds a 5-segment relation with keys 0..49 in segment
// order (clustered), so key predicates map cleanly onto segments.
func pruneFixture(t *testing.T) (*catalog.TableMeta, map[segment.ObjectID]*segment.Segment) {
	t.Helper()
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "tag", Kind: tuple.KindString},
	)
	rows := make([]tuple.Row, 50)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str("x")}
	}
	segs := segment.Split(0, "t", rows, 10, 1e9)
	store := make(map[segment.ObjectID]*segment.Segment)
	for _, sg := range segs {
		store[sg.ID] = sg
	}
	cat := catalog.New(0)
	return cat.MustAddTable("t", sch, segs), store
}

// TestSeqScanPruning: a pruned scan must fetch (and charge) only the
// surviving segments while the filtered row stream stays byte-identical,
// on both the row and the batch protocol.
func TestSeqScanPruning(t *testing.T) {
	tm, store := pruneFixture(t)
	pred := expr.ColBetween(tm.Schema, "k", tuple.Int(23), tuple.Int(31))
	pruner, ok := stats.ForPredicate(pred, tm.Schema, tm.Stats)
	if !ok {
		t.Fatal("predicate not prunable")
	}

	run := func(prune bool, batch bool) ([]tuple.Row, int, time.Duration) {
		fetch := &countingFetcher{store: MapFetcher(store)}
		clock := &countingClock{}
		ctx := &Ctx{Clock: clock, Fetch: fetch, Costs: Costs{ProcessPerObject: time.Second}}
		scan := NewSeqScan(ctx, tm)
		if prune {
			scan.Pruner = pruner
		}
		it := NewFilter(scan, pred)
		var rows []tuple.Row
		var err error
		if batch {
			rows, err = Collect(it)
		} else {
			// Force the row-at-a-time protocol.
			if err := it.Open(); err != nil {
				t.Fatal(err)
			}
			for {
				row, ok, nerr := it.Next()
				if nerr != nil {
					err = nerr
					break
				}
				if !ok {
					break
				}
				rows = append(rows, row.Clone())
			}
			it.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		return rows, fetch.n, clock.total
	}

	for _, batch := range []bool{false, true} {
		plain, plainFetches, plainCost := run(false, batch)
		pruned, prunedFetches, prunedCost := run(true, batch)
		if !reflect.DeepEqual(plain, pruned) {
			t.Fatalf("batch=%v: pruned rows diverge:\n%v\n%v", batch, plain, pruned)
		}
		if plainFetches != 5 {
			t.Fatalf("batch=%v: unpruned scan fetched %d segments", batch, plainFetches)
		}
		// Keys 23..31 span exactly segments 2 and 3.
		if prunedFetches != 2 {
			t.Fatalf("batch=%v: pruned scan fetched %d segments, want 2", batch, prunedFetches)
		}
		if prunedCost >= plainCost {
			t.Fatalf("batch=%v: pruning did not reduce processing charges (%v vs %v)", batch, prunedCost, plainCost)
		}
	}
}

// TestSeqScanPruneAll: a predicate outside every zone map fetches
// nothing and returns the empty relation.
func TestSeqScanPruneAll(t *testing.T) {
	tm, store := pruneFixture(t)
	pred := expr.ColGE(tm.Schema, "k", tuple.Int(1000))
	pruner, ok := stats.ForPredicate(pred, tm.Schema, tm.Stats)
	if !ok {
		t.Fatal("predicate not prunable")
	}
	fetch := &countingFetcher{store: MapFetcher(store)}
	ctx := &Ctx{Clock: NopClock{}, Fetch: fetch}
	scan := NewSeqScan(ctx, tm)
	scan.Pruner = pruner
	rows, err := Collect(NewFilter(scan, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 || fetch.n != 0 {
		t.Fatalf("rows %d, fetches %d; want 0, 0", len(rows), fetch.n)
	}
	if scan.SegmentsSkipped() != 5 {
		t.Fatalf("SegmentsSkipped = %d, want 5", scan.SegmentsSkipped())
	}
}

// TestExplainShowsPruning: the plan display carries the pushed-down
// predicate and the skip counts; unpruned scans render exactly as
// before.
func TestExplainShowsPruning(t *testing.T) {
	tm, store := pruneFixture(t)
	ctx := NewTestCtx(store)
	plain := Explain(NewSeqScan(ctx, tm))
	if strings.Contains(plain, "prune") {
		t.Fatalf("unpruned scan mentions pruning: %s", plain)
	}
	pred := expr.ColBetween(tm.Schema, "k", tuple.Int(0), tuple.Int(9))
	pruner, _ := stats.ForPredicate(pred, tm.Schema, tm.Stats)
	scan := NewSeqScan(ctx, tm)
	scan.Pruner = pruner
	got := Explain(scan)
	if !strings.Contains(got, "prune 4/5 segments") {
		t.Fatalf("explain missing prune detail: %s", got)
	}
	if !strings.Contains(got, "k BETWEEN 0 AND 9") {
		t.Fatalf("explain missing predicate: %s", got)
	}
}
