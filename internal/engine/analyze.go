package engine

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tuple"
)

// EXPLAIN ANALYZE support: every operator carries a nil-by-default
// *OpStats pointer; with it nil (the always-on default) NextBatch pays
// one predictable branch and nothing else — no time.Now calls, no
// allocations. EnableAnalyze walks a built plan and arms each operator;
// ExplainAnalyze renders the plan with the measured per-operator
// rows/batches/bytes/time after the plan has been drained.
//
// Per-operator time is inclusive of children (each NextBatch call spans
// the child pulls it makes), matching what PostgreSQL's EXPLAIN ANALYZE
// reports as total time. Analyzed plans must run serially: OpStats has
// no lock, so a morsel-parallel drain of an armed plan would race.

// OpStats accumulates one operator's EXPLAIN ANALYZE measurements.
type OpStats struct {
	// Batches and Rows count the operator's output.
	Batches int64
	Rows    int64
	// Bytes is the logical size of the output values (8 bytes per
	// numeric, string payload length for strings).
	Bytes int64
	// Time is total time spent inside NextBatch, inclusive of children.
	Time time.Duration
}

// observe folds one NextBatch call into the stats.
func (o *OpStats) observe(d time.Duration, b *tuple.Batch, ok bool) {
	o.Time += d
	if !ok || b == nil {
		return
	}
	o.Batches++
	o.Rows += int64(b.Len())
	o.Bytes += batchLogicalBytes(b)
}

// batchLogicalBytes estimates the logical payload size of a batch.
func batchLogicalBytes(b *tuple.Batch) int64 {
	var total int64
	sc := b.Schema()
	for c := 0; c < sc.Len(); c++ {
		col := b.Col(c)
		if sc.Cols[c].Kind == tuple.KindString {
			for _, v := range col {
				total += int64(len(v.S))
			}
		} else {
			total += 8 * int64(len(col))
		}
	}
	return total
}

// timedBatch runs one armed NextBatch call and records it. Only the
// analyze path reaches here, so the method-value allocation for fn is
// never paid when analysis is off.
func timedBatch(st *OpStats, fn func() (*tuple.Batch, bool, error)) (*tuple.Batch, bool, error) {
	t0 := time.Now()
	b, ok, err := fn()
	st.observe(time.Since(t0), b, ok)
	return b, ok, err
}

// analyzable is implemented by every operator that can be armed for
// EXPLAIN ANALYZE; it exposes the operator's stats slot.
type analyzable interface {
	opStats() **OpStats
}

func (s *SeqScan) opStats() **OpStats  { return &s.ostats }
func (f *Filter) opStats() **OpStats   { return &f.ostats }
func (pr *Project) opStats() **OpStats { return &pr.ostats }
func (l *Limit) opStats() **OpStats    { return &l.ostats }
func (d *Distinct) opStats() **OpStats { return &d.ostats }
func (v *Values) opStats() **OpStats   { return &v.ostats }
func (j *HashJoin) opStats() **OpStats { return &j.ostats }
func (a *HashAgg) opStats() **OpStats  { return &a.ostats }
func (s *Sort) opStats() **OpStats     { return &s.ostats }

// EnableAnalyze arms every operator in the plan for measurement. The
// armed plan must be drained serially (dop=1): OpStats is not locked.
func EnableAnalyze(it Iterator) {
	if a, ok := it.(analyzable); ok {
		slot := a.opStats()
		if *slot == nil {
			*slot = &OpStats{}
		}
	}
	if e, ok := it.(explainable); ok {
		_, children := e.explain()
		for _, c := range children {
			EnableAnalyze(c)
		}
	}
}

// ExplainAnalyze renders the plan tree with per-operator measurements —
// the EXPLAIN ANALYZE output. Operators that were never armed (or a
// plan rendered before draining) show zeros.
func ExplainAnalyze(it Iterator) string {
	var sb strings.Builder
	var walk func(it Iterator, depth int)
	walk = func(it Iterator, depth int) {
		indent := strings.Repeat("  ", depth)
		label := fmt.Sprintf("%T", it)
		var children []Iterator
		if e, ok := it.(explainable); ok {
			label, children = e.explain()
		}
		fmt.Fprintf(&sb, "%s-> %s", indent, label)
		if a, ok := it.(analyzable); ok {
			if st := *a.opStats(); st != nil {
				fmt.Fprintf(&sb, "  (rows=%d batches=%d bytes=%d time=%s)",
					st.Rows, st.Batches, st.Bytes, st.Time.Round(time.Microsecond))
			}
		}
		sb.WriteByte('\n')
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(it, 0)
	return sb.String()
}
