package engine

import (
	"fmt"
	"sync"

	"repro/internal/tuple"
)

// HashJoin is a blocking binary equi-join: it fully materializes the build
// (left) side into a hash table on Open, then streams the probe (right)
// side. This is the classical engine behaviour the paper contrasts with
// MJoin: the build side is pulled in its entirety before the first probe
// tuple is requested, pinning the storage access order to the plan shape.
//
// Both sides move batch-at-a-time: the build side is hashed with one
// vectorized pass per batch, and probe batches are hashed up front so the
// inner match loop does no hashing at all.
//
// With Parallelize(dop > 1) both phases use the morsel pool: build
// batches are scattered by key hash into per-worker partitions that are
// then merged into per-partition tables concurrently, and each probe
// batch is split into row ranges joined by dop workers at once. The
// output multiset is identical to the serial join's; only row order may
// differ.
type HashJoin struct {
	left, right         Iterator
	bleft, bright       BatchIterator
	leftKeys, rightKeys []int
	schema              *tuple.Schema
	dop                 int

	// table maps key hash -> indices into buildRows (serial build).
	table     map[uint64][]int32
	buildRows []tuple.Row

	// Parallel build state: partition p holds the build rows whose key
	// hash satisfies h % len(partRows) == p, with partTables[p] mapping
	// hash -> indices into partRows[p].
	partRows   [][]tuple.Row
	partTables []map[uint64][]int32

	// probe-side cursor state (serial probe)
	probeBatch  *tuple.Batch
	probeHashes []uint64
	probeIdx    int
	probeRow    tuple.Row
	matches     []int32
	matchIdx    int

	// Parallel probe output: per-worker reused columnar buffers plus the
	// queue of non-empty ones awaiting service for the current probe
	// batch. A queued buffer is only reset after the whole queue drains
	// and the next probe batch arrives, honoring the batch-validity
	// contract.
	parOut   []*tuple.Batch
	parQueue []*tuple.Batch

	out    *tuple.Batch
	outBuf tuple.Row
	ostats *OpStats
	cur    rowCursor
}

// NewHashJoin joins left and right on equality of the given key columns
// (by position in each side's schema).
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int) *HashJoin {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		panic("engine: hash join needs equal, non-empty key lists")
	}
	return &HashJoin{
		left: left, right: right,
		bleft: AsBatch(left), bright: AsBatch(right),
		leftKeys: leftKeys, rightKeys: rightKeys,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// JoinOn resolves key column names on both sides and builds the join.
func JoinOn(left, right Iterator, on [][2]string) *HashJoin {
	lk := make([]int, len(on))
	rk := make([]int, len(on))
	for i, pair := range on {
		lk[i] = left.Schema().MustColIndex(pair[0])
		rk[i] = right.Schema().MustColIndex(pair[1])
	}
	return NewHashJoin(left, right, lk, rk)
}

// Schema implements Iterator.
func (j *HashJoin) Schema() *tuple.Schema { return j.schema }

// setParallelism implements parallelizable.
func (j *HashJoin) setParallelism(dop int) { j.dop = normDOP(dop) }

func keysEqual(a tuple.Row, ak []int, b tuple.Row, bk []int) bool {
	for i := range ak {
		av, bv := a[ak[i]], b[bk[i]]
		if av.K != bv.K || !tuple.Equal(av, bv) {
			return false
		}
	}
	return true
}

// Open implements Iterator: drains the build side batch-at-a-time, hashing
// each batch's key columns in one vectorized pass.
func (j *HashJoin) Open() error {
	if err := j.bleft.Open(); err != nil {
		return err
	}
	var buildErr error
	if j.dop > 1 {
		buildErr = j.buildParallel()
	} else {
		buildErr = j.buildSerial()
	}
	if buildErr != nil {
		j.bleft.Close()
		return buildErr
	}
	if err := j.bleft.Close(); err != nil {
		return err
	}
	j.probeBatch, j.probeIdx, j.matches, j.matchIdx = nil, 0, nil, 0
	j.parQueue = nil
	j.cur.reset()
	return j.bright.Open()
}

// buildSerial is the DOP=1 build: one goroutine hashes and inserts every
// build batch.
func (j *HashJoin) buildSerial() error {
	j.table = make(map[uint64][]int32)
	j.buildRows = j.buildRows[:0]
	var hashes []uint64
	for {
		b, ok, err := j.bleft.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		hashes = b.HashColumns(j.leftKeys, hashes)
		rows := b.Rows()
		for i, row := range rows {
			j.table[hashes[i]] = append(j.table[hashes[i]], int32(len(j.buildRows)))
			j.buildRows = append(j.buildRows, row)
		}
	}
}

// buildPart is one worker's slice of one hash partition: rows and their
// precomputed key hashes, appended contention-free during the scatter
// phase.
type buildPart struct {
	hashes []uint64
	rows   []tuple.Row
}

// buildParallel is the DOP>1 build. Phase 1 scatters: the morsel pool
// hashes each build batch and spreads its rows over P = 4*dop hash
// partitions, each worker writing only its own partition slices. Phase 2
// merges: workers claim whole partitions and fuse the per-worker slices
// into that partition's table, so no two goroutines ever touch the same
// map.
func (j *HashJoin) buildParallel() error {
	numParts := 4 * j.dop
	parts := make([][]buildPart, j.dop)
	for w := range parts {
		parts[w] = make([]buildPart, numParts)
	}
	hashBufs := make([][]uint64, j.dop)
	err := runMorsels(j.bleft, j.dop, func(w int, b *tuple.Batch) error {
		hashBufs[w] = b.HashColumns(j.leftKeys, hashBufs[w])
		rows := b.Rows()
		mine := parts[w]
		for i, row := range rows {
			h := hashBufs[w][i]
			p := &mine[int(h%uint64(numParts))]
			p.hashes = append(p.hashes, h)
			p.rows = append(p.rows, row)
		}
		return nil
	})
	if err != nil {
		return err
	}
	j.partRows = make([][]tuple.Row, numParts)
	j.partTables = make([]map[uint64][]int32, numParts)
	total := 0
	for w := range parts {
		for p := range parts[w] {
			total += len(parts[w][p].rows)
		}
	}
	mergeStripe := func(w, stride int) {
		for p := w; p < numParts; p += stride {
			n := 0
			for ww := range parts {
				n += len(parts[ww][p].rows)
			}
			if n == 0 {
				continue
			}
			rows := make([]tuple.Row, 0, n)
			table := make(map[uint64][]int32, n)
			for ww := range parts {
				bp := &parts[ww][p]
				for i, row := range bp.rows {
					table[bp.hashes[i]] = append(table[bp.hashes[i]], int32(len(rows)))
					rows = append(rows, row)
				}
			}
			j.partRows[p], j.partTables[p] = rows, table
		}
	}
	// A small build side is merged inline: spinning up goroutines to
	// build a few dozen map entries costs more than the maps.
	if total < DefaultBatchSize {
		mergeStripe(0, 1)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < j.dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mergeStripe(w, j.dop)
		}(w)
	}
	wg.Wait()
	return nil
}

// loadProbeRow positions the match cursor on probe row i of the current
// batch.
func (j *HashJoin) loadProbeRow(i int) {
	j.probeIdx = i
	j.probeRow = j.probeBatch.AppendRowTo(j.probeRow[:0], i)
	j.matches = j.table[j.probeHashes[i]]
	j.matchIdx = 0
}

// NextBatch implements BatchIterator: emits up to a batch of joined rows.
func (j *HashJoin) NextBatch() (*tuple.Batch, bool, error) {
	if j.ostats != nil {
		return timedBatch(j.ostats, j.nextBatch)
	}
	return j.nextBatch()
}

func (j *HashJoin) nextBatch() (*tuple.Batch, bool, error) {
	if j.dop > 1 {
		return j.nextBatchParallel()
	}
	if j.out == nil {
		j.out = tuple.NewBatch(j.schema, DefaultBatchSize)
	}
	j.out.Reset()
	for {
		for j.probeBatch != nil && j.probeIdx < j.probeBatch.Len() {
			for j.matchIdx < len(j.matches) {
				build := j.buildRows[j.matches[j.matchIdx]]
				j.matchIdx++
				if !keysEqual(build, j.leftKeys, j.probeRow, j.rightKeys) {
					continue // hash collision
				}
				j.outBuf = append(j.outBuf[:0], build...)
				j.outBuf = append(j.outBuf, j.probeRow...)
				j.out.AppendRow(j.outBuf)
				if j.out.Full() {
					return j.out, true, nil
				}
			}
			if j.probeIdx+1 < j.probeBatch.Len() {
				j.loadProbeRow(j.probeIdx + 1)
			} else {
				j.probeIdx = j.probeBatch.Len()
			}
		}
		b, ok, err := j.bright.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if j.out.Len() > 0 {
				return j.out, true, nil
			}
			return nil, false, nil
		}
		j.probeBatch = b
		j.probeHashes = b.HashColumns(j.rightKeys, j.probeHashes)
		j.loadProbeRow(0)
	}
}

// nextBatchParallel serves the DOP>1 probe: each probe batch is hashed
// once, split into contiguous row ranges joined by dop workers at once,
// and the non-empty per-worker output batches are served one per call,
// in range order.
func (j *HashJoin) nextBatchParallel() (*tuple.Batch, bool, error) {
	for {
		if len(j.parQueue) > 0 {
			b := j.parQueue[0]
			j.parQueue = j.parQueue[1:]
			return b, true, nil
		}
		b, ok, err := j.bright.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		j.probeHashes = b.HashColumns(j.rightKeys, j.probeHashes)
		j.probeParallel(b)
	}
}

// minParallelProbeRows is the probe-batch size below which forking
// workers costs more than it saves; smaller batches probe inline on the
// calling goroutine (against the same partitioned tables, so results are
// unchanged).
const minParallelProbeRows = 256

// probeParallel joins one probe batch against the partitioned build
// tables with dop workers over contiguous row ranges. Workers only read
// the shared batch and tables; each appends matches to its own reused
// columnar buffer, so steady-state probing allocates nothing.
func (j *HashJoin) probeParallel(b *tuple.Batch) {
	if j.parOut == nil {
		j.parOut = make([]*tuple.Batch, j.dop)
		for w := range j.parOut {
			j.parOut[w] = tuple.NewBatch(j.schema, DefaultBatchSize)
		}
	}
	workers := j.dop
	if b.Len() < minParallelProbeRows {
		workers = 1
	}
	var wg sync.WaitGroup
	used := 0
	splitRange(b.Len(), workers, func(part, start, end int) {
		used++
		out := j.parOut[part]
		out.Reset()
		if workers == 1 {
			j.probeRange(b, start, end, out)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			j.probeRange(b, start, end, out)
		}()
	})
	wg.Wait()
	j.parQueue = j.parQueue[:0]
	for _, out := range j.parOut[:used] {
		if out.Len() > 0 {
			j.parQueue = append(j.parQueue, out)
		}
	}
}

// probeRange joins probe rows [start, end) of b into out, reading only
// the shared batch, hash array and partitioned tables.
func (j *HashJoin) probeRange(b *tuple.Batch, start, end int, out *tuple.Batch) {
	numParts := uint64(len(j.partRows))
	var probeRow, outBuf tuple.Row
	for i := start; i < end; i++ {
		h := j.probeHashes[i]
		p := int(h % numParts)
		matches := j.partTables[p][h]
		if len(matches) == 0 {
			continue
		}
		probeRow = b.AppendRowTo(probeRow[:0], i)
		for _, mi := range matches {
			build := j.partRows[p][mi]
			if !keysEqual(build, j.leftKeys, probeRow, j.rightKeys) {
				continue // hash collision
			}
			outBuf = append(outBuf[:0], build...)
			outBuf = append(outBuf, probeRow...)
			out.AppendRow(outBuf)
		}
	}
}

// Next implements Iterator.
func (j *HashJoin) Next() (tuple.Row, bool, error) { return j.cur.next(j) }

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.buildRows = nil
	j.partRows, j.partTables = nil, nil
	j.probeBatch, j.matches = nil, nil
	j.parOut, j.parQueue = nil, nil
	return j.bright.Close()
}

// BuildJoinTree chains binary hash joins left-deep over the inputs:
// ((in[0] ⋈ in[1]) ⋈ in[2]) ⋈ ... with each join's keys named by the
// caller. Used by the workload query plans.
type JoinSpec struct {
	// LeftCol is resolved against the accumulated left schema, RightCol
	// against inputs[i+1].
	LeftCol, RightCol string
}

// BuildJoinTree constructs the left-deep tree; len(specs) must be
// len(inputs)-1.
func BuildJoinTree(inputs []Iterator, specs []JoinSpec) (Iterator, error) {
	if len(inputs) < 2 || len(specs) != len(inputs)-1 {
		return nil, fmt.Errorf("engine: join tree needs n inputs and n-1 specs, got %d/%d", len(inputs), len(specs))
	}
	cur := inputs[0]
	for i, spec := range specs {
		right := inputs[i+1]
		cur = JoinOn(cur, right, [][2]string{{spec.LeftCol, spec.RightCol}})
	}
	return cur, nil
}
