package engine

import (
	"fmt"

	"repro/internal/tuple"
)

// HashJoin is a blocking binary equi-join: it fully materializes the build
// (left) side into a hash table on Open, then streams the probe (right)
// side. This is the classical engine behaviour the paper contrasts with
// MJoin: the build side is pulled in its entirety before the first probe
// tuple is requested, pinning the storage access order to the plan shape.
//
// Both sides move batch-at-a-time: the build side is hashed with one
// vectorized pass per batch, and probe batches are hashed up front so the
// inner match loop does no hashing at all.
type HashJoin struct {
	left, right         Iterator
	bleft, bright       BatchIterator
	leftKeys, rightKeys []int
	schema              *tuple.Schema

	// table maps key hash -> indices into buildRows.
	table     map[uint64][]int32
	buildRows []tuple.Row

	// probe-side cursor state
	probeBatch  *tuple.Batch
	probeHashes []uint64
	probeIdx    int
	probeRow    tuple.Row
	matches     []int32
	matchIdx    int

	out    *tuple.Batch
	outBuf tuple.Row
	cur    rowCursor
}

// NewHashJoin joins left and right on equality of the given key columns
// (by position in each side's schema).
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int) *HashJoin {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		panic("engine: hash join needs equal, non-empty key lists")
	}
	return &HashJoin{
		left: left, right: right,
		bleft: AsBatch(left), bright: AsBatch(right),
		leftKeys: leftKeys, rightKeys: rightKeys,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// JoinOn resolves key column names on both sides and builds the join.
func JoinOn(left, right Iterator, on [][2]string) *HashJoin {
	lk := make([]int, len(on))
	rk := make([]int, len(on))
	for i, pair := range on {
		lk[i] = left.Schema().MustColIndex(pair[0])
		rk[i] = right.Schema().MustColIndex(pair[1])
	}
	return NewHashJoin(left, right, lk, rk)
}

// Schema implements Iterator.
func (j *HashJoin) Schema() *tuple.Schema { return j.schema }

func keysEqual(a tuple.Row, ak []int, b tuple.Row, bk []int) bool {
	for i := range ak {
		av, bv := a[ak[i]], b[bk[i]]
		if av.K != bv.K || !tuple.Equal(av, bv) {
			return false
		}
	}
	return true
}

// Open implements Iterator: drains the build side batch-at-a-time, hashing
// each batch's key columns in one vectorized pass.
func (j *HashJoin) Open() error {
	if err := j.bleft.Open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]int32)
	j.buildRows = j.buildRows[:0]
	var hashes []uint64
	for {
		b, ok, err := j.bleft.NextBatch()
		if err != nil {
			j.bleft.Close()
			return err
		}
		if !ok {
			break
		}
		hashes = b.HashColumns(j.leftKeys, hashes)
		rows := b.Rows()
		for i, row := range rows {
			j.table[hashes[i]] = append(j.table[hashes[i]], int32(len(j.buildRows)))
			j.buildRows = append(j.buildRows, row)
		}
	}
	if err := j.bleft.Close(); err != nil {
		return err
	}
	j.probeBatch, j.probeIdx, j.matches, j.matchIdx = nil, 0, nil, 0
	j.cur.reset()
	return j.bright.Open()
}

// loadProbeRow positions the match cursor on probe row i of the current
// batch.
func (j *HashJoin) loadProbeRow(i int) {
	j.probeIdx = i
	j.probeRow = j.probeBatch.AppendRowTo(j.probeRow[:0], i)
	j.matches = j.table[j.probeHashes[i]]
	j.matchIdx = 0
}

// NextBatch implements BatchIterator: emits up to a batch of joined rows.
func (j *HashJoin) NextBatch() (*tuple.Batch, bool, error) {
	if j.out == nil {
		j.out = tuple.NewBatch(j.schema, DefaultBatchSize)
	}
	j.out.Reset()
	for {
		for j.probeBatch != nil && j.probeIdx < j.probeBatch.Len() {
			for j.matchIdx < len(j.matches) {
				build := j.buildRows[j.matches[j.matchIdx]]
				j.matchIdx++
				if !keysEqual(build, j.leftKeys, j.probeRow, j.rightKeys) {
					continue // hash collision
				}
				j.outBuf = append(j.outBuf[:0], build...)
				j.outBuf = append(j.outBuf, j.probeRow...)
				j.out.AppendRow(j.outBuf)
				if j.out.Full() {
					return j.out, true, nil
				}
			}
			if j.probeIdx+1 < j.probeBatch.Len() {
				j.loadProbeRow(j.probeIdx + 1)
			} else {
				j.probeIdx = j.probeBatch.Len()
			}
		}
		b, ok, err := j.bright.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if j.out.Len() > 0 {
				return j.out, true, nil
			}
			return nil, false, nil
		}
		j.probeBatch = b
		j.probeHashes = b.HashColumns(j.rightKeys, j.probeHashes)
		j.loadProbeRow(0)
	}
}

// Next implements Iterator.
func (j *HashJoin) Next() (tuple.Row, bool, error) { return j.cur.next(j) }

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.buildRows = nil
	j.probeBatch, j.matches = nil, nil
	return j.bright.Close()
}

// BuildJoinTree chains binary hash joins left-deep over the inputs:
// ((in[0] ⋈ in[1]) ⋈ in[2]) ⋈ ... with each join's keys named by the
// caller. Used by the workload query plans.
type JoinSpec struct {
	// LeftCol is resolved against the accumulated left schema, RightCol
	// against inputs[i+1].
	LeftCol, RightCol string
}

// BuildJoinTree constructs the left-deep tree; len(specs) must be
// len(inputs)-1.
func BuildJoinTree(inputs []Iterator, specs []JoinSpec) (Iterator, error) {
	if len(inputs) < 2 || len(specs) != len(inputs)-1 {
		return nil, fmt.Errorf("engine: join tree needs n inputs and n-1 specs, got %d/%d", len(inputs), len(specs))
	}
	cur := inputs[0]
	for i, spec := range specs {
		right := inputs[i+1]
		cur = JoinOn(cur, right, [][2]string{{spec.LeftCol, spec.RightCol}})
	}
	return cur, nil
}
