package engine

import (
	"fmt"

	"repro/internal/tuple"
)

// HashJoin is a blocking binary equi-join: it fully materializes the build
// (left) side into a hash table on Open, then streams the probe (right)
// side. This is the classical engine behaviour the paper contrasts with
// MJoin: the build side is pulled in its entirety before the first probe
// tuple is requested, pinning the storage access order to the plan shape.
type HashJoin struct {
	left, right         Iterator
	leftKeys, rightKeys []int
	schema              *tuple.Schema

	table map[uint64][]tuple.Row
	// current probe matches being emitted
	matches  []tuple.Row
	matchIdx int
	probeRow tuple.Row
}

// NewHashJoin joins left and right on equality of the given key columns
// (by position in each side's schema).
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int) *HashJoin {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		panic("engine: hash join needs equal, non-empty key lists")
	}
	return &HashJoin{
		left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// JoinOn resolves key column names on both sides and builds the join.
func JoinOn(left, right Iterator, on [][2]string) *HashJoin {
	lk := make([]int, len(on))
	rk := make([]int, len(on))
	for i, pair := range on {
		lk[i] = left.Schema().MustColIndex(pair[0])
		rk[i] = right.Schema().MustColIndex(pair[1])
	}
	return NewHashJoin(left, right, lk, rk)
}

// Schema implements Iterator.
func (j *HashJoin) Schema() *tuple.Schema { return j.schema }

// hashKeys hashes the key columns of a row.
func hashKeys(row tuple.Row, keys []int) uint64 {
	var h uint64 = 14695981039346656037
	for _, k := range keys {
		h = h*1099511628211 ^ row[k].Hash()
	}
	return h
}

func keysEqual(a tuple.Row, ak []int, b tuple.Row, bk []int) bool {
	for i := range ak {
		av, bv := a[ak[i]], b[bk[i]]
		if av.K != bv.K || !tuple.Equal(av, bv) {
			return false
		}
	}
	return true
}

// Open implements Iterator: drains the build side.
func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]tuple.Row)
	for {
		row, ok, err := j.left.Next()
		if err != nil {
			j.left.Close()
			return err
		}
		if !ok {
			break
		}
		h := hashKeys(row, j.leftKeys)
		j.table[h] = append(j.table[h], row)
	}
	if err := j.left.Close(); err != nil {
		return err
	}
	j.matches, j.matchIdx, j.probeRow = nil, 0, nil
	return j.right.Open()
}

// Next implements Iterator.
func (j *HashJoin) Next() (tuple.Row, bool, error) {
	for {
		for j.matchIdx < len(j.matches) {
			build := j.matches[j.matchIdx]
			j.matchIdx++
			if keysEqual(build, j.leftKeys, j.probeRow, j.rightKeys) {
				return build.Concat(j.probeRow), true, nil
			}
		}
		probe, ok, err := j.right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.probeRow = probe
		j.matches = j.table[hashKeys(probe, j.rightKeys)]
		j.matchIdx = 0
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.matches = nil
	return j.right.Close()
}

// BuildJoinTree chains binary hash joins left-deep over the inputs:
// ((in[0] ⋈ in[1]) ⋈ in[2]) ⋈ ... with each join's keys named by the
// caller. Used by the workload query plans.
type JoinSpec struct {
	// LeftCol is resolved against the accumulated left schema, RightCol
	// against inputs[i+1].
	LeftCol, RightCol string
}

// BuildJoinTree constructs the left-deep tree; len(specs) must be
// len(inputs)-1.
func BuildJoinTree(inputs []Iterator, specs []JoinSpec) (Iterator, error) {
	if len(inputs) < 2 || len(specs) != len(inputs)-1 {
		return nil, fmt.Errorf("engine: join tree needs n inputs and n-1 specs, got %d/%d", len(inputs), len(specs))
	}
	cur := inputs[0]
	for i, spec := range specs {
		right := inputs[i+1]
		cur = JoinOn(cur, right, [][2]string{{spec.LeftCol, spec.RightCol}})
	}
	return cur, nil
}
