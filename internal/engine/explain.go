package engine

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// explainable lets operators describe themselves for plan display.
type explainable interface {
	explain() (label string, children []Iterator)
}

// Explain renders the operator tree as an indented plan, similar to
// EXPLAIN output in classical engines.
func Explain(it Iterator) string {
	var sb strings.Builder
	var walk func(it Iterator, depth int)
	walk = func(it Iterator, depth int) {
		indent := strings.Repeat("  ", depth)
		label := fmt.Sprintf("%T", it)
		var children []Iterator
		if e, ok := it.(explainable); ok {
			label, children = e.explain()
		}
		fmt.Fprintf(&sb, "%s-> %s\n", indent, label)
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(it, 0)
	return sb.String()
}

func (s *SeqScan) explain() (string, []Iterator) {
	label := fmt.Sprintf("SeqScan %s (%d segments, %d rows)", s.table.Name, len(s.table.Objects), s.table.RowCount)
	if s.Pruner != nil {
		total := len(s.table.Objects)
		label += fmt.Sprintf(" [prune %d/%d segments on %s]",
			stats.CountSkipped(s.Pruner, total), total, s.Pruner.Predicate())
	}
	if s.Project != nil {
		names := make([]string, len(s.Project))
		for i, ci := range s.Project {
			names[i] = s.table.Schema.Cols[ci].Name
		}
		label += fmt.Sprintf(" [project %d/%d cols: %s]",
			len(s.Project), s.table.Schema.Len(), strings.Join(names, ","))
	}
	return label, nil
}

func (f *Filter) explain() (string, []Iterator) {
	return fmt.Sprintf("Filter %s", f.pred), []Iterator{f.child}
}

func (pr *Project) explain() (string, []Iterator) {
	parts := make([]string, len(pr.cols))
	for i, c := range pr.cols {
		parts[i] = fmt.Sprintf("%s=%s", c.Name, c.E)
	}
	return "Project " + strings.Join(parts, ", "), []Iterator{pr.child}
}

func (l *Limit) explain() (string, []Iterator) {
	return fmt.Sprintf("Limit %d", l.n), []Iterator{l.child}
}

func (v *Values) explain() (string, []Iterator) {
	return fmt.Sprintf("Values (%d rows)", len(v.rows)), nil
}

// dopSuffix annotates parallel operators in plan displays; serial
// operators stay unmarked so DOP=1 plans render exactly as before.
func dopSuffix(dop int) string {
	if dop > 1 {
		return fmt.Sprintf(" [dop=%d]", dop)
	}
	return ""
}

func (j *HashJoin) explain() (string, []Iterator) {
	pairs := make([]string, len(j.leftKeys))
	for i := range j.leftKeys {
		pairs[i] = fmt.Sprintf("%s=%s",
			j.left.Schema().Cols[j.leftKeys[i]].Name,
			j.right.Schema().Cols[j.rightKeys[i]].Name)
	}
	return "HashJoin on " + strings.Join(pairs, ", ") + dopSuffix(j.dop), []Iterator{j.left, j.right}
}

func (a *HashAgg) explain() (string, []Iterator) {
	var parts []string
	for _, g := range a.groups {
		parts = append(parts, "group:"+g.Name)
	}
	for _, spec := range a.aggs {
		if spec.Arg != nil {
			parts = append(parts, fmt.Sprintf("%s(%s)", spec.Kind, spec.Arg))
		} else {
			parts = append(parts, fmt.Sprintf("%s(*)", spec.Kind))
		}
	}
	return "HashAgg " + strings.Join(parts, ", ") + dopSuffix(a.dop), []Iterator{a.child}
}

func (s *Sort) explain() (string, []Iterator) {
	parts := make([]string, len(s.keys))
	for i, k := range s.keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("%s %s", k.E, dir)
	}
	return "Sort " + strings.Join(parts, ", "), []Iterator{s.child}
}
