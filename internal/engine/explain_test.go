package engine

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/tuple"
)

func TestExplainTree(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3)
	ctx := NewTestCtx(store)
	plan := NewLimit(
		NewSort(
			NewProject(
				NewFilter(NewSeqScan(ctx, tm), expr.ColGE(tm.Schema, "k", tuple.Int(2))),
				[]ProjectCol{{Name: "k2", Kind: tuple.KindInt64, E: expr.Bind(tm.Schema, "k")}},
			),
			[]SortKey{{E: expr.NewCol(0, "k2"), Desc: true}},
		),
		3,
	)
	out := Explain(plan)
	wantLines := []string{"Limit 3", "Sort k2 desc", "Project k2=k", "Filter", "SeqScan t (4 segments, 10 rows)"}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Fatalf("explain missing %q:\n%s", w, out)
		}
	}
	// Indentation deepens down the tree.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	for i := 1; i < len(lines); i++ {
		if len(lines[i])-len(strings.TrimLeft(lines[i], " ")) <= len(lines[i-1])-len(strings.TrimLeft(lines[i-1], " ")) {
			t.Fatalf("indentation not increasing:\n%s", out)
		}
	}
}

func TestExplainJoinAndAgg(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})
	sch2 := tuple.NewSchema(tuple.Column{Name: "k2", Kind: tuple.KindInt64})
	join := JoinOn(NewValues(sch, nil), NewValues(sch2, nil), [][2]string{{"k", "k2"}})
	agg := NewHashAgg(join, nil, []AggSpec{{Kind: AggCount, Name: "n"}})
	out := Explain(agg)
	for _, w := range []string{"HashAgg count(*)", "HashJoin on k=k2", "Values (0 rows)"} {
		if !strings.Contains(out, w) {
			t.Fatalf("explain missing %q:\n%s", w, out)
		}
	}
}
