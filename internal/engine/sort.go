package engine

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	// E computes the sort value from an input row.
	E expr.Expr
	// Desc inverts the order for this key.
	Desc bool
}

// Sort is a blocking in-memory sort with a stable order. The child is
// drained batch-at-a-time; sorted rows are served row-wise or in batches.
type Sort struct {
	child  Iterator
	bchild BatchIterator
	keys   []SortKey

	out    []tuple.Row
	idx    int
	ob     *tuple.Batch
	ostats *OpStats
}

// NewSort wraps child with an ORDER BY.
func NewSort(child Iterator, keys []SortKey) *Sort {
	return &Sort{child: child, bchild: AsBatch(child), keys: keys}
}

// Schema implements Iterator.
func (s *Sort) Schema() *tuple.Schema { return s.child.Schema() }

// Open implements Iterator: drains and sorts the child.
func (s *Sort) Open() error {
	if err := s.bchild.Open(); err != nil {
		return err
	}
	defer s.bchild.Close()
	s.out = s.out[:0]
	for {
		b, ok, err := s.bchild.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.out = append(s.out, b.Rows()...)
	}
	// Precompute key values to avoid re-evaluating during comparisons.
	keyVals := make([][]tuple.Value, len(s.out))
	for i, row := range s.out {
		kv := make([]tuple.Value, len(s.keys))
		for j, k := range s.keys {
			v, err := k.E.Eval(row)
			if err != nil {
				return err
			}
			kv[j] = v
		}
		keyVals[i] = kv
	}
	idx := make([]int, len(s.out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, k := range s.keys {
			c := tuple.Compare(keyVals[idx[a]][j], keyVals[idx[b]][j])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]tuple.Row, len(s.out))
	for i, j := range idx {
		sorted[i] = s.out[j]
	}
	s.out = sorted
	s.idx = 0
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (tuple.Row, bool, error) {
	if s.idx >= len(s.out) {
		return nil, false, nil
	}
	r := s.out[s.idx]
	s.idx++
	return r, true, nil
}

// NextBatch implements BatchIterator, sharing the row cursor with Next.
func (s *Sort) NextBatch() (*tuple.Batch, bool, error) {
	if s.ostats != nil {
		return timedBatch(s.ostats, s.nextBatch)
	}
	return s.nextBatch()
}

func (s *Sort) nextBatch() (*tuple.Batch, bool, error) {
	return serveRowSlice(&s.ob, s.child.Schema(), s.out, &s.idx)
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.out = nil
	return nil
}
