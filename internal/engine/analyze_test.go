package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/trace"
	"repro/internal/tuple"
)

// analyzePlan builds scan -> filter(k>=3) -> limit(5) over a 10-row,
// 4-segment table.
func analyzePlan(t *testing.T) (Iterator, *Ctx) {
	t.Helper()
	tm, store := buildTable(t, "t", kvRows(10), 3)
	ctx := NewTestCtx(store)
	scan := NewSeqScan(ctx, tm)
	f := NewFilter(scan, expr.ColGE(tm.Schema, "k", tuple.Int(3)))
	return NewLimit(f, 5), ctx
}

func TestEnableAnalyzeMeasuresOperators(t *testing.T) {
	plan, _ := analyzePlan(t)
	EnableAnalyze(plan)
	rows, err := Collect(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	out := ExplainAnalyze(plan)
	for _, want := range []string{"Limit 5", "Filter", "SeqScan", "rows=5", "time="} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
	// The limit's output is 5 rows; the filter produced at least 5 (it
	// feeds the limit) and the scan read whole segments.
	lim, ok := plan.(*Limit)
	if !ok {
		t.Fatal("plan root is not Limit")
	}
	if lim.ostats.Rows != 5 || lim.ostats.Batches == 0 || lim.ostats.Time <= 0 {
		t.Errorf("limit stats = %+v", *lim.ostats)
	}
	f := lim.child.(*Filter)
	if f.ostats.Rows < 5 || f.ostats.Bytes <= 0 {
		t.Errorf("filter stats = %+v", *f.ostats)
	}
	sc := f.child.(*SeqScan)
	if sc.ostats.Rows < f.ostats.Rows {
		t.Errorf("scan emitted fewer rows (%d) than filter (%d)", sc.ostats.Rows, f.ostats.Rows)
	}
}

// Differential: rows must be byte-identical with analysis armed or not,
// and an un-armed plan renders without stats annotations.
func TestAnalyzeDoesNotChangeResults(t *testing.T) {
	plain, _ := analyzePlan(t)
	armed, _ := analyzePlan(t)
	EnableAnalyze(armed)
	r1, err1 := Collect(plain)
	r2, err2 := Collect(armed)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("analyze changed results:\n%v\nvs\n%v", r1, r2)
	}
	if out := ExplainAnalyze(plain); strings.Contains(out, "rows=") {
		t.Fatalf("un-armed plan rendered stats:\n%s", out)
	}
}

func TestCtxTraceRecordsFetchDecodeSpans(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3) // 4 segments
	qt := trace.NewQueryTrace("q", 0, "")
	ctx := NewTestCtx(store)
	ctx.Trace = qt
	if _, err := Collect(NewSeqScan(ctx, tm)); err != nil {
		t.Fatal(err)
	}
	var fetches int
	for _, sp := range qt.Spans() {
		if sp.Cat == trace.CatFetch {
			fetches++
		}
	}
	if fetches != 4 {
		t.Fatalf("recorded %d fetch spans, want 4 (one per segment)", fetches)
	}
}
