package engine

import (
	"sync"

	"repro/internal/tuple"
)

// This file is the morsel-driven parallel execution layer: a plan-walking
// Parallelize entry point plus the worker-pool primitive the blocking
// operators (HashJoin, HashAgg) build on. The design follows HyPer-style
// morsel-driven parallelism scaled down to this engine's batch protocol:
// a batch (DefaultBatchSize rows) is the morsel, the producing goroutine
// drains the child iterator serially — keeping Fetcher and Clock calls on
// the caller's goroutine, which the vtime simulation requires — and a
// pool of workers consumes private copies of the batches. DOP=1 keeps the
// fully serial PR 1 code paths; any DOP produces the same result multiset
// (order may differ across DOPs only where no Sort fixes it).

// parallelizable is implemented by operators that can spread their work
// across a worker pool. Parallelize uses it to thread the DOP through a
// plan without every constructor growing an argument.
type parallelizable interface {
	setParallelism(dop int)
}

// Parallelize sets the degree of parallelism on every operator of the
// plan rooted at it that supports parallel execution (HashJoin, HashAgg)
// and returns the root for chaining. dop <= 1 selects the serial path —
// the zero value is always safe. The walk descends through the adapter
// wrappers and every operator's children, so one call covers a whole
// plan.
func Parallelize(it Iterator, dop int) Iterator {
	var walk func(n any)
	walk = func(n any) {
		switch v := n.(type) {
		case *RowAdapter:
			walk(v.B)
			return
		case *BatchAdapter:
			walk(v.It)
			return
		}
		if p, ok := n.(parallelizable); ok {
			p.setParallelism(dop)
		}
		if e, ok := n.(explainable); ok {
			_, children := e.explain()
			for _, c := range children {
				walk(c)
			}
		}
	}
	walk(it)
	return it
}

// SeqScans returns every SeqScan leaf of the plan rooted at it, walking
// through the adapter wrappers and every operator's children (the same
// traversal as Parallelize). Callers use it to read per-scan counters —
// e.g. SegmentsSkipped — after a plan has been drained.
func SeqScans(it Iterator) []*SeqScan {
	var out []*SeqScan
	var walk func(n any)
	walk = func(n any) {
		switch v := n.(type) {
		case *RowAdapter:
			walk(v.B)
			return
		case *BatchAdapter:
			walk(v.It)
			return
		case *SeqScan:
			out = append(out, v)
			return
		}
		if e, ok := n.(explainable); ok {
			_, children := e.explain()
			for _, c := range children {
				walk(c)
			}
		}
	}
	walk(it)
	return out
}

// normDOP clamps a configured parallelism to a usable worker count.
func normDOP(dop int) int {
	if dop < 1 {
		return 1
	}
	return dop
}

// runMorsels drains src on the calling goroutine and fans its batches out
// to dop workers. Each worker receives a private copy of every batch (the
// morsel), so source buffer reuse never races; morsel buffers are
// recycled through a free list once a worker is done with one. The first
// error — from the source or any worker — stops the run and is returned.
// src must already be Open; runMorsels does not Close it.
//
// worker is called from dop goroutines, with w in [0, dop) identifying
// the worker, so per-worker state indexed by w needs no locking. The
// morsel is only valid for the duration of the call.
func runMorsels(src BatchIterator, dop int, worker func(w int, morsel *tuple.Batch) error) error {
	morsels := make(chan *tuple.Batch, dop)
	free := make(chan *tuple.Batch, 2*dop+1)
	stop := make(chan struct{})
	var once sync.Once
	var workerErr error
	var wg sync.WaitGroup
	// Workers spawn lazily, one per morsel dispatched, up to dop: a
	// source with little data gets one worker and none of the fan-out
	// overhead, a big one ramps to the full pool.
	spawned := 0
	spawn := func() {
		w := spawned
		spawned++
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range morsels {
				select {
				case <-stop:
					// A worker failed: drop remaining morsels so the
					// producer unblocks, but do no more work.
					continue
				default:
				}
				if err := worker(w, m); err != nil {
					once.Do(func() {
						workerErr = err
						close(stop)
					})
					continue
				}
				select {
				case free <- m:
				default:
				}
			}
		}()
	}
	var srcErr error
	var m *tuple.Batch
producer:
	for {
		select {
		case <-stop:
			break producer
		default:
		}
		b, ok, err := src.NextBatch()
		if err != nil {
			srcErr = err
			break
		}
		if !ok {
			break
		}
		if m == nil {
			select {
			case m = <-free:
				m.Reset()
			default:
				m = tuple.NewBatch(src.Schema(), max(b.Len(), DefaultBatchSize))
			}
		}
		// Coalesce small source batches (e.g. tiny segments) into one
		// full morsel so dispatch overhead amortizes over real work.
		m.AppendBatch(b)
		if m.Len() >= DefaultBatchSize {
			if spawned < dop {
				spawn()
			}
			morsels <- m
			m = nil
		}
	}
	if m != nil && m.Len() > 0 {
		if spawned < dop {
			spawn()
		}
		morsels <- m
	}
	close(morsels)
	wg.Wait()
	if workerErr != nil {
		return workerErr
	}
	return srcErr
}

// splitRange cuts [0, n) into at most parts contiguous chunks of near-
// equal size and calls fn(part, start, end) for each non-empty chunk.
func splitRange(n, parts int, fn func(part, start, end int)) {
	if parts > n {
		parts = n
	}
	if parts <= 0 {
		return
	}
	size := (n + parts - 1) / parts
	part := 0
	for start := 0; start < n; start += size {
		end := min(start+size, n)
		fn(part, start, end)
		part++
	}
}
