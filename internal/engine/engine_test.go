package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// buildTable registers n rows of (k, v) pairs split into segments and
// returns the catalog plus backing store.
func buildTable(t *testing.T, name string, rows []tuple.Row, perSeg int) (*catalog.TableMeta, map[segment.ObjectID]*segment.Segment) {
	t.Helper()
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	segs := segment.Split(0, name, rows, perSeg, 1e9)
	store := make(map[segment.ObjectID]*segment.Segment)
	for _, sg := range segs {
		store[sg.ID] = sg
	}
	cat := catalog.New(0)
	tm := cat.MustAddTable(name, sch, segs)
	return tm, store
}

func kvRows(n int) []tuple.Row {
	out := make([]tuple.Row, n)
	for i := range out {
		out[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(fmt.Sprintf("v%d", i))}
	}
	return out
}

func TestSeqScanAllRows(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3)
	rows, err := Collect(NewSeqScan(NewTestCtx(store), tm))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

// countingClock tallies virtual charges.
type countingClock struct{ total time.Duration }

func (c *countingClock) Sleep(d time.Duration) { c.total += d }

func TestSeqScanChargesPerSegment(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3) // 4 segments
	clk := &countingClock{}
	ctx := &Ctx{Clock: clk, Fetch: MapFetcher(store), Costs: Costs{ProcessPerObject: time.Second}}
	if _, err := Collect(NewSeqScan(ctx, tm)); err != nil {
		t.Fatal(err)
	}
	if clk.total != 4*time.Second {
		t.Fatalf("charged %v, want 4s", clk.total)
	}
}

func TestFilter(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 4)
	ctx := NewTestCtx(store)
	scan := NewSeqScan(ctx, tm)
	pred := expr.ColGE(tm.Schema, "k", tuple.Int(7))
	rows, err := Collect(NewFilter(scan, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestProject(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(3), 10)
	scan := NewSeqScan(NewTestCtx(store), tm)
	proj := NewProject(scan, []ProjectCol{
		{Name: "k2", Kind: tuple.KindInt64, E: expr.Arith{Op: expr.Mul, L: expr.Bind(tm.Schema, "k"), R: expr.Lit(tuple.Int(2))}},
	})
	rows, err := Collect(proj)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 4}
	for i, r := range rows {
		if r[0].AsInt() != want[i] {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	if proj.Schema().Cols[0].Name != "k2" {
		t.Fatalf("schema %v", proj.Schema())
	}
}

func TestProjectKindMismatch(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(1), 10)
	scan := NewSeqScan(NewTestCtx(store), tm)
	proj := NewProject(scan, []ProjectCol{
		{Name: "bad", Kind: tuple.KindString, E: expr.Bind(tm.Schema, "k")},
	})
	if _, err := Collect(proj); err == nil {
		t.Fatal("kind mismatch not detected")
	}
}

func TestLimit(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 4)
	rows, err := Collect(NewLimit(NewSeqScan(NewTestCtx(store), tm), 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestHashJoinInner(t *testing.T) {
	// left: (k, v) k=0..9; right: (k, v) k=5..14 -> matches 5..9.
	lt, lstore := buildTable(t, "l", kvRows(10), 3)
	var rrows []tuple.Row
	for i := 5; i < 15; i++ {
		rrows = append(rrows, tuple.Row{tuple.Int(int64(i)), tuple.Str("r")})
	}
	rsch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	rsegs := segment.Split(0, "r", rrows, 4, 1e9)
	store := lstore
	for _, sg := range rsegs {
		store[sg.ID] = sg
	}
	rcat := catalog.New(0)
	rt := rcat.MustAddTable("r", rsch, rsegs)

	ctx := NewTestCtx(store)
	join := JoinOn(NewSeqScan(ctx, lt), NewSeqScan(ctx, rt), [][2]string{{"k", "k"}})
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Join output schema: k, v, right.k, v -> disambiguated.
	names := join.Schema().ColumnNames()
	if !reflect.DeepEqual(names, []string{"k", "v", "right.k", "right.v"}) {
		t.Fatalf("join schema %v", names)
	}
	var keys []int
	for _, r := range rows {
		if r[0].AsInt() != r[2].AsInt() {
			t.Fatalf("join mismatch %v", r)
		}
		keys = append(keys, int(r[0].AsInt()))
	}
	sort.Ints(keys)
	if !reflect.DeepEqual(keys, []int{5, 6, 7, 8, 9}) {
		t.Fatalf("keys %v", keys)
	}
}

func TestHashJoinDuplicates(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})
	l := NewValues(sch, []tuple.Row{{tuple.Int(1)}, {tuple.Int(1)}, {tuple.Int(2)}})
	r := NewValues(sch, []tuple.Row{{tuple.Int(1)}, {tuple.Int(1)}, {tuple.Int(3)}})
	rows, err := Collect(JoinOn(l, r, [][2]string{{"k", "k"}}))
	if err != nil {
		t.Fatal(err)
	}
	// 2 left ones x 2 right ones = 4 result rows.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
}

func TestHashJoinHashCollisionSafety(t *testing.T) {
	// Different keys that could collide in the hash must not join.
	sch := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})
	var lrows, rrows []tuple.Row
	for i := 0; i < 1000; i++ {
		lrows = append(lrows, tuple.Row{tuple.Int(int64(i))})
		rrows = append(rrows, tuple.Row{tuple.Int(int64(i + 500))})
	}
	rows, err := Collect(JoinOn(NewValues(sch, lrows), NewValues(sch, rrows), [][2]string{{"k", "k"}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("got %d rows, want 500", len(rows))
	}
}

func TestBuildJoinTreeThreeWay(t *testing.T) {
	a := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt64})
	b := tuple.NewSchema(tuple.Column{Name: "y", Kind: tuple.KindInt64})
	c := tuple.NewSchema(tuple.Column{Name: "z", Kind: tuple.KindInt64})
	mk := func(s *tuple.Schema, vals ...int64) Iterator {
		rows := make([]tuple.Row, len(vals))
		for i, v := range vals {
			rows[i] = tuple.Row{tuple.Int(v)}
		}
		return NewValues(s, rows)
	}
	tree, err := BuildJoinTree(
		[]Iterator{mk(a, 1, 2, 3), mk(b, 2, 3, 4), mk(c, 3, 4, 5)},
		[]JoinSpec{{LeftCol: "x", RightCol: "y"}, {LeftCol: "y", RightCol: "z"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(tree)
	if err != nil {
		t.Fatal(err)
	}
	// x=y: (2,2),(3,3); then y=z: (3,3,3) only... plus (2,2) joins z? z
	// has 3,4,5 so y=2 no match; y=3 matches z=3.
	if len(rows) != 1 || rows[0][0].AsInt() != 3 {
		t.Fatalf("rows %v", rows)
	}
}

func TestBuildJoinTreeErrors(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt64})
	if _, err := BuildJoinTree([]Iterator{NewValues(s, nil)}, nil); err == nil {
		t.Fatal("single input accepted")
	}
}

func TestHashAggGlobal(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt64})
	in := NewValues(sch, []tuple.Row{{tuple.Int(1)}, {tuple.Int(2)}, {tuple.Int(3)}})
	agg := NewHashAgg(in, nil, []AggSpec{
		{Kind: AggCount, Name: "n"},
		{Kind: AggSum, Arg: expr.Bind(sch, "x"), Name: "s"},
		{Kind: AggAvg, Arg: expr.Bind(sch, "x"), Name: "a"},
	})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0].AsInt() != 3 || rows[0][1].AsFloat() != 6 || rows[0][2].AsFloat() != 2 {
		t.Fatalf("agg row %v", rows[0])
	}
}

func TestHashAggEmptyInputGlobal(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt64})
	agg := NewHashAgg(NewValues(sch, nil), nil, []AggSpec{{Kind: AggCount, Name: "n"}})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 0 {
		t.Fatalf("agg over empty: %v", rows)
	}
}

func TestHashAggGrouped(t *testing.T) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "g", Kind: tuple.KindString},
		tuple.Column{Name: "x", Kind: tuple.KindInt64},
	)
	in := NewValues(sch, []tuple.Row{
		{tuple.Str("b"), tuple.Int(10)},
		{tuple.Str("a"), tuple.Int(1)},
		{tuple.Str("b"), tuple.Int(20)},
		{tuple.Str("a"), tuple.Int(2)},
	})
	agg := NewHashAgg(in,
		[]GroupCol{{Name: "g", Kind: tuple.KindString, E: expr.Bind(sch, "g")}},
		[]AggSpec{
			{Kind: AggCount, Name: "n"},
			{Kind: AggSum, Arg: expr.Bind(sch, "x"), Name: "s"},
			{Kind: AggMin, Arg: expr.Bind(sch, "x"), Name: "lo"},
			{Kind: AggMax, Arg: expr.Bind(sch, "x"), Name: "hi"},
		})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d groups", len(rows))
	}
	// Deterministic order: sorted by key => "a" first.
	if rows[0][0].AsString() != "a" || rows[0][1].AsInt() != 2 || rows[0][2].AsFloat() != 3 {
		t.Fatalf("group a: %v", rows[0])
	}
	if rows[1][0].AsString() != "b" || rows[1][3].AsInt() != 10 || rows[1][4].AsInt() != 20 {
		t.Fatalf("group b: %v", rows[1])
	}
}

func TestSortAscDesc(t *testing.T) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt64},
		tuple.Column{Name: "b", Kind: tuple.KindInt64},
	)
	in := NewValues(sch, []tuple.Row{
		{tuple.Int(1), tuple.Int(9)},
		{tuple.Int(2), tuple.Int(5)},
		{tuple.Int(1), tuple.Int(3)},
	})
	srt := NewSort(in, []SortKey{
		{E: expr.Bind(sch, "a")},
		{E: expr.Bind(sch, "b"), Desc: true},
	})
	rows, err := Collect(srt)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 9}, {1, 3}, {2, 5}}
	for i, w := range want {
		if rows[i][0].AsInt() != w[0] || rows[i][1].AsInt() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestSortStability(t *testing.T) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "seq", Kind: tuple.KindInt64},
	)
	var in []tuple.Row
	for i := 0; i < 10; i++ {
		in = append(in, tuple.Row{tuple.Int(int64(i % 2)), tuple.Int(int64(i))})
	}
	rows, err := Collect(NewSort(NewValues(sch, in), []SortKey{{E: expr.Bind(sch, "k")}}))
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	for _, r := range rows[:5] { // k=0 block preserves seq order
		if r[1].AsInt() < last {
			t.Fatalf("unstable sort: %v", rows)
		}
		last = r[1].AsInt()
	}
}

func TestDistinct(t *testing.T) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt64},
		tuple.Column{Name: "b", Kind: tuple.KindString},
	)
	in := NewValues(sch, []tuple.Row{
		{tuple.Int(1), tuple.Str("x")},
		{tuple.Int(1), tuple.Str("x")},
		{tuple.Int(1), tuple.Str("y")},
		{tuple.Int(2), tuple.Str("x")},
		{tuple.Int(1), tuple.Str("x")},
	})
	rows, err := Collect(NewDistinct(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %d, want 3", len(rows))
	}
	// First occurrence order preserved.
	if rows[0][1].AsString() != "x" || rows[1][1].AsString() != "y" || rows[2][0].AsInt() != 2 {
		t.Fatalf("order %v", rows)
	}
}

func TestDistinctKeyCollisionSafety(t *testing.T) {
	// Rows that render similarly must still be distinguished by kind.
	sch := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindInt64})
	sch2 := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindString})
	_ = sch2
	in := NewValues(sch, []tuple.Row{{tuple.Int(1)}, {tuple.Int(1)}})
	rows, err := Collect(NewDistinct(in))
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows %v err %v", rows, err)
	}
}

func TestCollectPropagatesFetchError(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(5), 2)
	// Remove one backing object to break the fetch.
	delete(store, tm.Objects[1])
	if _, err := Collect(NewSeqScan(NewTestCtx(store), tm)); err == nil {
		t.Fatal("missing object not reported")
	}
}
