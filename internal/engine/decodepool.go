package engine

import (
	"sync"
	"time"
)

// This file implements the concurrent decode stage of the asynchronous
// execution pipeline: a pool of real (OS-scheduled) worker goroutines
// that turn fetched segment payloads into columnar data off the
// consumer's critical path, so decode overlaps compute in wall-clock
// time. Virtual time is untouched — decode has no virtual charge (the
// per-object processing charge models the whole scan step), so the pool
// changes what the hardware does, never what the simulation observes.
//
// Determinism: submitted jobs must be pure computations — they write
// only state they own (their output slots and the buffers handed to
// them) and read only immutable inputs. The consumer processes results
// strictly in submission order via the returned tickets, so results are
// byte-identical to inline execution at any worker count; the harnesses
// in internal/experiments enforce this under -race.

// DecodePool is a fixed-size pool of background decode workers shared by
// the scans (and the MJoin arrival path) of one client. Create with
// NewDecodePool, hand work to Submit, and Close when the client's
// workload ends; Close waits for in-flight jobs, so no worker outlives
// the pool.
type DecodePool struct {
	jobs chan *DecodeTicket
	wg   sync.WaitGroup
}

// DecodeTicket is the handle of one submitted job. The submitter keeps
// it and calls Wait before reading anything the job wrote.
type DecodeTicket struct {
	fn   func()
	done chan struct{}
	// Busy is the real time the worker spent running the job. Valid
	// after Wait (or Ready() == true).
	Busy time.Duration
}

// NewDecodePool starts a pool of the given number of workers (minimum 1).
func NewDecodePool(workers int) *DecodePool {
	if workers < 1 {
		workers = 1
	}
	p := &DecodePool{jobs: make(chan *DecodeTicket, 4*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *DecodePool) worker() {
	defer p.wg.Done()
	for t := range p.jobs {
		start := time.Now()
		t.fn()
		t.Busy = time.Since(start)
		close(t.done)
	}
}

// Submit schedules fn on a worker and returns its ticket. fn must be a
// pure computation: no shared mutable state, no simulation (vtime)
// operations — background goroutines are invisible to the cooperative
// scheduler. Submit blocks only if the job queue is full, which bounds
// the in-flight work of an over-eager producer.
func (p *DecodePool) Submit(fn func()) *DecodeTicket {
	t := &DecodeTicket{fn: fn, done: make(chan struct{})}
	p.jobs <- t
	return t
}

// Close stops the workers after the queued jobs drain. No Submit may
// follow. Abandoned tickets (submitted but never waited on) still run to
// completion — their outputs are simply discarded — so Close never
// strands a worker.
func (p *DecodePool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Wait blocks until the job completes and returns the real time the
// caller spent blocked — the decode stall that the pipeline failed to
// hide. After Wait the job's outputs (and Busy) are safe to read.
func (t *DecodeTicket) Wait() time.Duration {
	select {
	case <-t.done:
		return 0
	default:
	}
	start := time.Now()
	<-t.done
	return time.Since(start)
}

// Ready reports, without blocking, whether the job has completed — i.e.
// whether its decode fully overlapped with the consumer's other work.
func (t *DecodeTicket) Ready() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Pipeline configures the asynchronous decode stage for the operators of
// one client. A nil *Pipeline (or nil Pool) disables it: scans decode
// inline, exactly the pre-pipeline behaviour.
type Pipeline struct {
	// Pool is the shared decode-worker pool.
	Pool *DecodePool
	// Depth bounds how many segments each scan keeps fetched-and-decoding
	// ahead of consumption (default 2). Each in-flight segment holds one
	// decode buffer, so memory grows linearly with Depth.
	Depth int
}

// depth resolves the read-ahead default.
func (pl *Pipeline) depth() int {
	if pl.Depth > 0 {
		return pl.Depth
	}
	return 2
}

// PipeStats is the real-time (wall-clock) accounting of one pipeline
// consumer: where its hardware time went while virtual time stood still.
// With the pipeline off, decode runs inline and DecodeStall equals
// DecodeBusy; the difference between the two is exactly the decode work
// the pipeline moved off the critical path.
type PipeStats struct {
	// FetchStall is the real time the consumer spent blocked fetching
	// segments (normally ~0 under simulation, where waiting is virtual).
	FetchStall time.Duration
	// DecodeStall is the real time the consumer spent blocked waiting for
	// a segment's decode.
	DecodeStall time.Duration
	// DecodeBusy is the total real time spent decoding, on any thread.
	DecodeBusy time.Duration
	// Decodes counts decoded segments; DecodesOverlapped counts those
	// whose decode had already finished when the consumer asked — fully
	// hidden behind compute.
	Decodes           int
	DecodesOverlapped int
}

// Add accumulates another consumer's counters.
func (s *PipeStats) Add(o PipeStats) {
	s.FetchStall += o.FetchStall
	s.DecodeStall += o.DecodeStall
	s.DecodeBusy += o.DecodeBusy
	s.Decodes += o.Decodes
	s.DecodesOverlapped += o.DecodesOverlapped
}

// Plus returns the sum of two PipeStats.
func (s PipeStats) Plus(o PipeStats) PipeStats {
	s.Add(o)
	return s
}

// Hidden returns the decode time the pipeline kept off the critical
// path: DecodeBusy - DecodeStall, clamped at zero.
func (s PipeStats) Hidden() time.Duration {
	if h := s.DecodeBusy - s.DecodeStall; h > 0 {
		return h
	}
	return 0
}
