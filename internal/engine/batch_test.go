package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// rowOnlyIter hides the batch interface of an operator, forcing AsBatch
// to fall back to the BatchAdapter — the row-at-a-time protocol of the
// seed engine.
type rowOnlyIter struct{ it Iterator }

func (r rowOnlyIter) Open() error                    { return r.it.Open() }
func (r rowOnlyIter) Next() (tuple.Row, bool, error) { return r.it.Next() }
func (r rowOnlyIter) Close() error                   { return r.it.Close() }
func (r rowOnlyIter) Schema() *tuple.Schema          { return r.it.Schema() }

func TestBatchAdapterRoundTrip(t *testing.T) {
	rows, sch := benchRowsN(2500) // not a multiple of DefaultBatchSize
	bi := AsBatch(rowOnlyIter{NewValues(sch, rows)})
	if _, isAdapter := bi.(*BatchAdapter); !isAdapter {
		t.Fatal("row-only iterator should wrap in BatchAdapter")
	}
	got, err := CollectBatches(bi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("adapter round trip differs: %d rows vs %d", len(got), len(rows))
	}
}

func TestRowAdapterOverBatchNative(t *testing.T) {
	rows, sch := benchRowsN(2500)
	ra := &RowAdapter{B: NewValues(sch, rows)}
	got, err := Collect(Iterator(ra))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("RowAdapter differs from source rows")
	}
}

func benchRowsN(n int) ([]tuple.Row, *tuple.Schema) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int(int64(i % 97)), tuple.Str(fmt.Sprintf("val%d", i%13))}
	}
	return rows, sch
}

// --- error propagation through the batch paths ---

func TestSeqScanNextBatchPropagatesFetchError(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3)
	delete(store, tm.Objects[1]) // miss on the second of four segments
	scan := NewSeqScan(NewTestCtx(store), tm)
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	if _, ok, err := scan.NextBatch(); err != nil || !ok {
		t.Fatalf("first segment should batch cleanly, got ok=%v err=%v", ok, err)
	}
	if _, ok, err := scan.NextBatch(); err == nil || ok {
		t.Fatalf("missing object not reported on batch path (ok=%v err=%v)", ok, err)
	}
}

func TestCollectPropagatesFetchErrorThroughOperators(t *testing.T) {
	tm, store := buildTable(t, "t", kvRows(10), 3)
	delete(store, tm.Objects[2])
	ctx := NewTestCtx(store)
	pred := expr.ColGE(tm.Schema, "k", tuple.Int(0))
	plans := map[string]Iterator{
		"filter":   NewFilter(NewSeqScan(ctx, tm), pred),
		"project":  NewProject(NewSeqScan(ctx, tm), []ProjectCol{{Name: "k", Kind: tuple.KindInt64, E: expr.Bind(tm.Schema, "k")}}),
		"sort":     NewSort(NewSeqScan(ctx, tm), []SortKey{{E: expr.Bind(tm.Schema, "k")}}),
		"agg":      NewHashAgg(NewSeqScan(ctx, tm), nil, []AggSpec{{Kind: AggCount, Name: "n"}}),
		"distinct": NewDistinct(NewSeqScan(ctx, tm)),
		"join":     JoinOn(NewSeqScan(ctx, tm), NewSeqScan(ctx, tm), [][2]string{{"k", "k"}}),
	}
	for name, it := range plans {
		if _, err := Collect(it); err == nil {
			t.Fatalf("%s: fetch error swallowed", name)
		}
	}
}

func TestHashJoinBuildSideFetchError(t *testing.T) {
	lt, lstore := buildTable(t, "l", kvRows(6), 2)
	delete(lstore, lt.Objects[0])
	rt, rstore := buildTable(t, "r2", kvRows(6), 2)
	for id, sg := range rstore {
		lstore[id] = sg
	}
	ctx := NewTestCtx(lstore)
	join := JoinOn(NewSeqScan(ctx, lt), NewSeqScan(ctx, rt), [][2]string{{"k", "k"}})
	if err := join.Open(); err == nil {
		join.Close()
		t.Fatal("build-side fetch error not surfaced at Open")
	}
}

// --- differential property test: severed row edges vs end-to-end batches ---

// randTable builds the segments of a random multi-segment table.
func randTable(t *testing.T, rng *rand.Rand, name string, cols []tuple.Column, n, perSeg int) []*segment.Segment {
	t.Helper()
	rows := make([]tuple.Row, n)
	for i := range rows {
		row := make(tuple.Row, len(cols))
		for c, col := range cols {
			switch col.Kind {
			case tuple.KindInt64:
				row[c] = tuple.Int(rng.Int63n(50))
			case tuple.KindFloat64:
				row[c] = tuple.Float(float64(rng.Int63n(1000)) / 10)
			default:
				row[c] = tuple.Str(fmt.Sprintf("s%d", rng.Intn(20)))
			}
		}
		rows[i] = row
	}
	return segment.Split(0, name, rows, perSeg, 1e9)
}

// TestBatchVsRowPropertyPipelines: for several random datasets, a
// scan→filter→join→agg→sort pipeline run with every edge severed to
// row-at-a-time must match the same pipeline run batch-to-batch.
func TestBatchVsRowPropertyPipelines(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := make(map[segment.ObjectID]*segment.Segment)
		cat := catalog.New(0)
		fsegs := randTable(t, rng, "f", []tuple.Column{
			{Name: "fk", Kind: tuple.KindInt64},
			{Name: "fv", Kind: tuple.KindFloat64},
		}, 600+rng.Intn(500), 100)
		dsegs := randTable(t, rng, "d", []tuple.Column{
			{Name: "dk", Kind: tuple.KindInt64},
			{Name: "dn", Kind: tuple.KindString},
		}, 80, 30)
		for _, sg := range fsegs {
			store[sg.ID] = sg
		}
		for _, sg := range dsegs {
			store[sg.ID] = sg
		}
		fm := cat.MustAddTable("f", tuple.NewSchema(
			tuple.Column{Name: "fk", Kind: tuple.KindInt64},
			tuple.Column{Name: "fv", Kind: tuple.KindFloat64}), fsegs)
		dm := cat.MustAddTable("d", tuple.NewSchema(
			tuple.Column{Name: "dk", Kind: tuple.KindInt64},
			tuple.Column{Name: "dn", Kind: tuple.KindString}), dsegs)
		ctx := NewTestCtx(store)

		mkPlan := func(edge func(Iterator) Iterator) Iterator {
			scanF := NewFilter(edge(NewSeqScan(ctx, fm)), expr.ColGE(fm.Schema, "fk", tuple.Int(5)))
			join := JoinOn(edge(scanF), edge(NewSeqScan(ctx, dm)), [][2]string{{"fk", "dk"}})
			agg := NewHashAgg(edge(join),
				[]GroupCol{{Name: "dn", Kind: tuple.KindString, E: expr.Bind(join.Schema(), "dn")}},
				[]AggSpec{
					{Kind: AggCount, Name: "n"},
					{Kind: AggSum, Arg: expr.Bind(join.Schema(), "fv"), Name: "s"},
					{Kind: AggMin, Arg: expr.Bind(join.Schema(), "fk"), Name: "lo", ArgKind: tuple.KindInt64},
				})
			return NewSort(edge(agg), []SortKey{{E: expr.NewCol(0, "dn")}})
		}

		rowRes, err := Collect(rowOnlyIter{mkPlan(func(it Iterator) Iterator { return rowOnlyIter{it} })})
		if err != nil {
			t.Fatal(err)
		}
		batchRes, err := CollectBatches(AsBatch(mkPlan(func(it Iterator) Iterator { return it })))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(renderRows(rowRes), renderRows(batchRes)) {
			t.Fatalf("seed %d: row pipeline and batch pipeline disagree:\n%v\n%v",
				seed, renderRows(rowRes), renderRows(batchRes))
		}
		// The pipelines must also agree under unordered comparison with a
		// distinct+limit tail, exercising the remaining operators.
		mkTail := func(edge func(Iterator) Iterator) Iterator {
			scanF := NewFilter(edge(NewSeqScan(ctx, fm)), expr.ColGE(fm.Schema, "fk", tuple.Int(10)))
			proj := NewProject(edge(scanF), []ProjectCol{{Name: "fk", Kind: tuple.KindInt64, E: expr.Bind(fm.Schema, "fk")}})
			return NewLimit(edge(NewDistinct(edge(proj))), 25)
		}
		rowTail, err := Collect(rowOnlyIter{mkTail(func(it Iterator) Iterator { return rowOnlyIter{it} })})
		if err != nil {
			t.Fatal(err)
		}
		batchTail, err := CollectBatches(AsBatch(mkTail(func(it Iterator) Iterator { return it })))
		if err != nil {
			t.Fatal(err)
		}
		rt, bt := renderRows(rowTail), renderRows(batchTail)
		sort.Strings(rt)
		sort.Strings(bt)
		if !reflect.DeepEqual(rt, bt) {
			t.Fatalf("seed %d: distinct/limit tails disagree:\n%v\n%v", seed, rt, bt)
		}
	}
}

func renderRows(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}
