package engine

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// fakePruner skips the flagged segment indices.
type fakePruner []bool

func (p fakePruner) CanSkip(seg int) bool { return seg < len(p) && p[seg] }
func (p fakePruner) Predicate() string    { return "fake" }

// TestSeqScanPipelinedIdentical is the scan-level differential: the
// pipelined scan (decode pool + read-ahead) must produce byte-identical
// rows to the serial scan, on both the row and batch protocols, with and
// without pruning and projection. Run under -race this also exercises
// the pool's buffer ownership.
func TestSeqScanPipelinedIdentical(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(40), 4)
	pool := NewDecodePool(4)
	defer pool.Close()

	run := func(pipe *Pipeline, project []int, prune bool, batch bool) ([]tuple.Row, ScanBytes, PipeStats) {
		ctx := NewTestCtx(store)
		ctx.Pipe = pipe
		scan := NewSeqScan(ctx, tm)
		scan.Project = project
		if prune {
			scan.Pruner = fakePruner{false, true, false, true} // skip segments 1 and 3
		}
		var rows []tuple.Row
		var err error
		if batch {
			rows, err = CollectBatches(scan)
		} else {
			rows, err = Collect(scan)
		}
		if err != nil {
			t.Fatal(err)
		}
		return rows, scan.Bytes(), scan.PipeStats()
	}

	for _, project := range [][]int{nil, {0}} {
		for _, prune := range []bool{false, true} {
			for _, batch := range []bool{false, true} {
				want, wantBytes, basePS := run(nil, project, prune, batch)
				got, gotBytes, ps := run(&Pipeline{Pool: pool, Depth: 3}, project, prune, batch)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("project=%v prune=%v batch=%v: pipelined rows diverge", project, prune, batch)
				}
				// Byte accounting is decode-volume identical (DecodeTime is
				// real time and may differ).
				wantBytes.DecodeTime, gotBytes.DecodeTime = 0, 0
				if wantBytes != gotBytes {
					t.Fatalf("project=%v prune=%v batch=%v: bytes %+v vs %+v", project, prune, batch, wantBytes, gotBytes)
				}
				if ps.Decodes != basePS.Decodes || ps.Decodes == 0 {
					t.Fatalf("pipelined decodes = %d, serial %d", ps.Decodes, basePS.Decodes)
				}
				// Serial baseline: decode fully on the critical path.
				if basePS.DecodeStall != basePS.DecodeBusy {
					t.Fatalf("serial stall %v != busy %v", basePS.DecodeStall, basePS.DecodeBusy)
				}
			}
		}
	}
}

// TestSeqScanPipelinedCostCharges pins the virtual-time contract: the
// pipelined scan charges exactly one ProcessPerObject per consumed
// segment, like the serial scan.
func TestSeqScanPipelinedCostCharges(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(20), 4)
	pool := NewDecodePool(2)
	defer pool.Close()
	clock := &countingClock{}
	ctx := &Ctx{Clock: clock, Fetch: MapFetcher(store), Costs: DefaultCosts(),
		Pipe: &Pipeline{Pool: pool}}
	scan := NewSeqScan(ctx, tm)
	if _, err := Collect(scan); err != nil {
		t.Fatal(err)
	}
	wantSegs := (20 + 3) / 4
	if want := DefaultCosts().ProcessPerObject * 5; clock.total != want {
		t.Fatalf("charged %v over %d segments, want %v", clock.total, wantSegs, want)
	}
}

// TestSeqScanPipelinedReopen: re-opening a pipelined scan (as a re-run
// or an inner-loop rescan would) must drain the old read-ahead window
// and produce the same rows again.
func TestSeqScanPipelinedReopen(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(24), 4)
	pool := NewDecodePool(2)
	defer pool.Close()
	ctx := NewTestCtx(store)
	ctx.Pipe = &Pipeline{Pool: pool, Depth: 4}
	scan := NewSeqScan(ctx, tm)
	first, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-opened pipelined scan diverged")
	}
}

// TestSeqScanPipelinedEarlyClose: abandoning a pipelined scan mid-drain
// (the LIMIT shape) must not leak in-flight decode jobs or corrupt the
// pool for later scans.
func TestSeqScanPipelinedEarlyClose(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(40), 4)
	pool := NewDecodePool(2)
	ctx := NewTestCtx(store)
	ctx.Pipe = &Pipeline{Pool: pool, Depth: 4}
	scan := NewSeqScan(ctx, tm)
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := scan.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	// A clean Close must leave the pool fully drainable.
	pool.Close()
}

// TestDecodeAheadOverlapsWithBlockedConsumer pins the overlap mechanism
// the wall-clock counters measure: while the consumer is blocked on one
// job, the remaining workers drain every job queued behind it, so those
// tickets are Ready before the consumer ever asks. The first job cannot
// finish until the others have, which makes the schedule deterministic
// on any host — including a single-core one, where the workers run
// precisely because the consumer is parked.
func TestDecodeAheadOverlapsWithBlockedConsumer(t *testing.T) {
	pool := NewDecodePool(2)
	defer pool.Close()

	const ahead = 5
	var laterDone sync.WaitGroup
	laterDone.Add(ahead)
	head := pool.Submit(laterDone.Wait) // holds one worker until the rest drain
	later := make([]*DecodeTicket, ahead)
	for i := range later {
		later[i] = pool.Submit(laterDone.Done)
	}

	// Consume in submission order, counting Ready-before-Wait exactly as
	// the scan and MJoin consumers do.
	var st PipeStats
	for _, tk := range append([]*DecodeTicket{head}, later...) {
		if tk.Ready() {
			st.DecodesOverlapped++
		}
		st.DecodeStall += tk.Wait()
		st.DecodeBusy += tk.Busy
		st.Decodes++
	}
	if st.Decodes != ahead+1 {
		t.Fatalf("consumed %d decodes, want %d", st.Decodes, ahead+1)
	}
	if st.DecodesOverlapped < ahead {
		t.Fatalf("only %d/%d queued decodes overlapped with the blocked consumer", st.DecodesOverlapped, ahead)
	}
}
