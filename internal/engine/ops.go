package engine

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// Filter passes through rows satisfying a boolean predicate.
type Filter struct {
	child Iterator
	pred  expr.Expr
}

// NewFilter wraps child with predicate pred (bound to child's schema).
func NewFilter(child Iterator, pred expr.Expr) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Iterator.
func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }

// Open implements Iterator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := expr.EvalBool(f.pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.child.Close() }

// ProjectCol is one output column of a projection.
type ProjectCol struct {
	Name string
	Kind tuple.Kind
	E    expr.Expr
}

// Project computes a new row from expressions over the child's rows.
type Project struct {
	child  Iterator
	cols   []ProjectCol
	schema *tuple.Schema
}

// NewProject builds a projection.
func NewProject(child Iterator, cols []ProjectCol) *Project {
	sc := make([]tuple.Column, len(cols))
	for i, c := range cols {
		sc[i] = tuple.Column{Name: c.Name, Kind: c.Kind}
	}
	return &Project{child: child, cols: cols, schema: tuple.NewSchema(sc...)}
}

// Schema implements Iterator.
func (pr *Project) Schema() *tuple.Schema { return pr.schema }

// Open implements Iterator.
func (pr *Project) Open() error { return pr.child.Open() }

// Next implements Iterator.
func (pr *Project) Next() (tuple.Row, bool, error) {
	row, ok, err := pr.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(tuple.Row, len(pr.cols))
	for i, c := range pr.cols {
		v, err := c.E.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if v.K != c.Kind {
			return nil, false, fmt.Errorf("engine: projection %q produced %v, declared %v", c.Name, v.K, c.Kind)
		}
		out[i] = v
	}
	return out, true, nil
}

// Close implements Iterator.
func (pr *Project) Close() error { return pr.child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	child Iterator
	n     int
	seen  int
}

// NewLimit wraps child with a row cap.
func NewLimit(child Iterator, n int) *Limit {
	return &Limit{child: child, n: n}
}

// Schema implements Iterator.
func (l *Limit) Schema() *tuple.Schema { return l.child.Schema() }

// Open implements Iterator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.child.Open()
}

// Next implements Iterator.
func (l *Limit) Next() (tuple.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.child.Close() }

// Distinct suppresses duplicate rows (SELECT DISTINCT). It is streaming:
// each row is remembered by its rendered key, so memory grows with the
// number of distinct rows seen.
type Distinct struct {
	child Iterator
	seen  map[string]struct{}
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Iterator) *Distinct {
	return &Distinct{child: child}
}

// Schema implements Iterator.
func (d *Distinct) Schema() *tuple.Schema { return d.child.Schema() }

// Open implements Iterator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]struct{})
	return d.child.Open()
}

// Next implements Iterator.
func (d *Distinct) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := rowKey(row)
		if _, dup := d.seen[key]; dup {
			continue
		}
		d.seen[key] = struct{}{}
		return row, true, nil
	}
}

// Close implements Iterator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.child.Close()
}

// rowKey renders a canonical duplicate-detection key.
func rowKey(row tuple.Row) string {
	var sb []byte
	for _, v := range row {
		sb = append(sb, byte(v.K))
		sb = append(sb, v.String()...)
		sb = append(sb, 0)
	}
	return string(sb)
}

// Values is a leaf iterator over in-memory rows; used by tests and by the
// MJoin result bridge.
type Values struct {
	schema *tuple.Schema
	rows   []tuple.Row
	idx    int
}

// NewValues builds a constant relation.
func NewValues(schema *tuple.Schema, rows []tuple.Row) *Values {
	return &Values{schema: schema, rows: rows}
}

// Schema implements Iterator.
func (v *Values) Schema() *tuple.Schema { return v.schema }

// Open implements Iterator.
func (v *Values) Open() error { v.idx = 0; return nil }

// Next implements Iterator.
func (v *Values) Next() (tuple.Row, bool, error) {
	if v.idx >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.idx]
	v.idx++
	return r, true, nil
}

// Close implements Iterator.
func (v *Values) Close() error { return nil }
