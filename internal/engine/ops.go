package engine

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// Filter passes through rows satisfying a boolean predicate. The core is
// batch-at-a-time: each child batch is evaluated in one pass and survivors
// are copied into a reused output batch; Next is a thin cursor on top.
type Filter struct {
	child  Iterator
	bchild BatchIterator
	pred   expr.Expr

	out    *tuple.Batch
	rowBuf tuple.Row
	cur    rowCursor
	ostats *OpStats
}

// NewFilter wraps child with predicate pred (bound to child's schema).
func NewFilter(child Iterator, pred expr.Expr) *Filter {
	return &Filter{child: child, bchild: AsBatch(child), pred: pred}
}

// Schema implements Iterator.
func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }

// Open implements Iterator.
func (f *Filter) Open() error {
	f.cur.reset()
	return f.bchild.Open()
}

// NextBatch implements BatchIterator.
func (f *Filter) NextBatch() (*tuple.Batch, bool, error) {
	if f.ostats != nil {
		return timedBatch(f.ostats, f.nextBatch)
	}
	return f.nextBatch()
}

func (f *Filter) nextBatch() (*tuple.Batch, bool, error) {
	if f.out == nil {
		f.out = tuple.NewBatch(f.child.Schema(), DefaultBatchSize)
	}
	for {
		in, ok, err := f.bchild.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		f.out.Reset()
		n := in.Len()
		for i := 0; i < n; i++ {
			f.rowBuf = in.AppendRowTo(f.rowBuf[:0], i)
			keep, err := expr.EvalBool(f.pred, f.rowBuf)
			if err != nil {
				return nil, false, err
			}
			if keep {
				f.out.AppendBatchRow(in, i)
			}
		}
		if f.out.Len() > 0 {
			return f.out, true, nil
		}
	}
}

// Next implements Iterator.
func (f *Filter) Next() (tuple.Row, bool, error) { return f.cur.next(f) }

// Close implements Iterator.
func (f *Filter) Close() error { return f.bchild.Close() }

// ProjectCol is one output column of a projection.
type ProjectCol struct {
	// Name labels the output column.
	Name string
	// Kind is the declared output kind; Eval results are checked against it.
	Kind tuple.Kind
	// E computes the output value from an input row.
	E expr.Expr
}

// Project computes a new row from expressions over the child's rows,
// batch-at-a-time.
type Project struct {
	child  Iterator
	bchild BatchIterator
	cols   []ProjectCol
	schema *tuple.Schema

	out    *tuple.Batch
	rowBuf tuple.Row
	outBuf tuple.Row
	cur    rowCursor
	ostats *OpStats
}

// NewProject builds a projection.
func NewProject(child Iterator, cols []ProjectCol) *Project {
	sc := make([]tuple.Column, len(cols))
	for i, c := range cols {
		sc[i] = tuple.Column{Name: c.Name, Kind: c.Kind}
	}
	return &Project{child: child, bchild: AsBatch(child), cols: cols, schema: tuple.NewSchema(sc...)}
}

// Schema implements Iterator.
func (pr *Project) Schema() *tuple.Schema { return pr.schema }

// Open implements Iterator.
func (pr *Project) Open() error {
	pr.cur.reset()
	return pr.bchild.Open()
}

// NextBatch implements BatchIterator.
func (pr *Project) NextBatch() (*tuple.Batch, bool, error) {
	if pr.ostats != nil {
		return timedBatch(pr.ostats, pr.nextBatch)
	}
	return pr.nextBatch()
}

func (pr *Project) nextBatch() (*tuple.Batch, bool, error) {
	in, ok, err := pr.bchild.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if pr.out == nil {
		pr.out = tuple.NewBatch(pr.schema, DefaultBatchSize)
		pr.outBuf = make(tuple.Row, len(pr.cols))
	}
	pr.out.Reset()
	n := in.Len()
	for i := 0; i < n; i++ {
		pr.rowBuf = in.AppendRowTo(pr.rowBuf[:0], i)
		for c, pc := range pr.cols {
			v, err := pc.E.Eval(pr.rowBuf)
			if err != nil {
				return nil, false, err
			}
			if v.K != pc.Kind {
				return nil, false, fmt.Errorf("engine: projection %q produced %v, declared %v", pc.Name, v.K, pc.Kind)
			}
			pr.outBuf[c] = v
		}
		pr.out.AppendRow(pr.outBuf)
	}
	return pr.out, true, nil
}

// Next implements Iterator.
func (pr *Project) Next() (tuple.Row, bool, error) { return pr.cur.next(pr) }

// Close implements Iterator.
func (pr *Project) Close() error { return pr.bchild.Close() }

// Limit passes through at most N rows. Full child batches within the
// budget pass through unchanged (zero copy); the batch straddling the
// limit is truncated into a private buffer.
type Limit struct {
	child  Iterator
	bchild BatchIterator
	n      int
	seen   int

	out    *tuple.Batch
	cur    rowCursor
	ostats *OpStats
}

// NewLimit wraps child with a row cap.
func NewLimit(child Iterator, n int) *Limit {
	return &Limit{child: child, bchild: AsBatch(child), n: n}
}

// Schema implements Iterator.
func (l *Limit) Schema() *tuple.Schema { return l.child.Schema() }

// Open implements Iterator.
func (l *Limit) Open() error {
	l.seen = 0
	l.cur.reset()
	return l.bchild.Open()
}

// NextBatch implements BatchIterator.
func (l *Limit) NextBatch() (*tuple.Batch, bool, error) {
	if l.ostats != nil {
		return timedBatch(l.ostats, l.nextBatch)
	}
	return l.nextBatch()
}

func (l *Limit) nextBatch() (*tuple.Batch, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	in, ok, err := l.bchild.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	take := l.n - l.seen
	if in.Len() <= take {
		l.seen += in.Len()
		return in, true, nil
	}
	if l.out == nil {
		l.out = tuple.NewBatch(l.child.Schema(), DefaultBatchSize)
	}
	l.out.Reset()
	for i := 0; i < take; i++ {
		l.out.AppendBatchRow(in, i)
	}
	l.seen += take
	return l.out, true, nil
}

// Next implements Iterator.
func (l *Limit) Next() (tuple.Row, bool, error) { return l.cur.next(l) }

// Close implements Iterator.
func (l *Limit) Close() error { return l.bchild.Close() }

// Distinct suppresses duplicate rows (SELECT DISTINCT). It is streaming:
// each row is remembered by its rendered key, so memory grows with the
// number of distinct rows seen.
type Distinct struct {
	child  Iterator
	bchild BatchIterator
	seen   map[string]struct{}

	out    *tuple.Batch
	rowBuf tuple.Row
	cur    rowCursor
	ostats *OpStats
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Iterator) *Distinct {
	return &Distinct{child: child, bchild: AsBatch(child)}
}

// Schema implements Iterator.
func (d *Distinct) Schema() *tuple.Schema { return d.child.Schema() }

// Open implements Iterator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]struct{})
	d.cur.reset()
	return d.bchild.Open()
}

// NextBatch implements BatchIterator.
func (d *Distinct) NextBatch() (*tuple.Batch, bool, error) {
	if d.ostats != nil {
		return timedBatch(d.ostats, d.nextBatch)
	}
	return d.nextBatch()
}

func (d *Distinct) nextBatch() (*tuple.Batch, bool, error) {
	if d.out == nil {
		d.out = tuple.NewBatch(d.child.Schema(), DefaultBatchSize)
	}
	for {
		in, ok, err := d.bchild.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		d.out.Reset()
		n := in.Len()
		for i := 0; i < n; i++ {
			d.rowBuf = in.AppendRowTo(d.rowBuf[:0], i)
			key := rowKey(d.rowBuf)
			if _, dup := d.seen[key]; dup {
				continue
			}
			d.seen[key] = struct{}{}
			d.out.AppendBatchRow(in, i)
		}
		if d.out.Len() > 0 {
			return d.out, true, nil
		}
	}
}

// Next implements Iterator.
func (d *Distinct) Next() (tuple.Row, bool, error) { return d.cur.next(d) }

// Close implements Iterator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.bchild.Close()
}

// rowKey renders a canonical duplicate-detection key.
func rowKey(row tuple.Row) string {
	var sb []byte
	for _, v := range row {
		sb = append(sb, byte(v.K))
		sb = append(sb, v.String()...)
		sb = append(sb, 0)
	}
	return string(sb)
}

// Values is a leaf iterator over in-memory rows; used by tests and by the
// MJoin result bridge. Next and NextBatch share one cursor, so the two
// protocols can be mixed safely.
type Values struct {
	schema *tuple.Schema
	rows   []tuple.Row
	idx    int
	out    *tuple.Batch
	ostats *OpStats
}

// NewValues builds a constant relation.
func NewValues(schema *tuple.Schema, rows []tuple.Row) *Values {
	return &Values{schema: schema, rows: rows}
}

// Schema implements Iterator.
func (v *Values) Schema() *tuple.Schema { return v.schema }

// Open implements Iterator.
func (v *Values) Open() error { v.idx = 0; return nil }

// Next implements Iterator.
func (v *Values) Next() (tuple.Row, bool, error) {
	if v.idx >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.idx]
	v.idx++
	return r, true, nil
}

// NextBatch implements BatchIterator.
func (v *Values) NextBatch() (*tuple.Batch, bool, error) {
	if v.ostats != nil {
		return timedBatch(v.ostats, v.nextBatch)
	}
	return v.nextBatch()
}

func (v *Values) nextBatch() (*tuple.Batch, bool, error) {
	return serveRowSlice(&v.out, v.schema, v.rows, &v.idx)
}

// Close implements Iterator.
func (v *Values) Close() error { return nil }
