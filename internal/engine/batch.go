package engine

import (
	"repro/internal/tuple"
)

// DefaultBatchSize is the number of rows moved per NextBatch call. Large
// enough to amortize per-call dispatch over data work, small enough to
// keep a batch of every operator in cache.
const DefaultBatchSize = 1024

// BatchIterator is the batched Volcano interface: operators move
// DefaultBatchSize rows per call instead of one, so per-call dispatch,
// hashing setup and schema lookups amortize over the batch. Every
// built-in operator implements both Iterator and BatchIterator; the
// returned batch is valid only until the next NextBatch call, so blocking
// consumers copy what they keep.
//
// Pick one protocol per drain: streaming operators serve Next through a
// row cursor that buffers a whole output batch, so switching to NextBatch
// mid-stream would skip the cursor's buffered rows. (Leaf and blocking
// operators — SeqScan, Values, Sort, HashAgg — share one cursor between
// the protocols and tolerate mixing, but callers should not rely on it.)
type BatchIterator interface {
	// Open prepares the operator for iteration.
	Open() error
	// NextBatch returns the next batch of rows; ok=false signals
	// exhaustion. A returned batch is never empty.
	NextBatch() (*tuple.Batch, bool, error)
	// Close releases resources. Close after a failed Open is allowed.
	Close() error
	// Schema describes the output rows.
	Schema() *tuple.Schema
}

// AsBatch returns it as a BatchIterator: operators that are batch-native
// pass through, anything else is wrapped in a BatchAdapter.
func AsBatch(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &BatchAdapter{It: it}
}

// BatchAdapter lifts a row-only Iterator into the batch protocol by
// accumulating rows into a reused buffer.
type BatchAdapter struct {
	// It is the wrapped row-at-a-time iterator.
	It  Iterator
	buf *tuple.Batch
}

// Open implements BatchIterator.
func (a *BatchAdapter) Open() error { return a.It.Open() }

// NextBatch implements BatchIterator.
func (a *BatchAdapter) NextBatch() (*tuple.Batch, bool, error) {
	if a.buf == nil {
		a.buf = tuple.NewBatch(a.It.Schema(), DefaultBatchSize)
	}
	a.buf.Reset()
	for !a.buf.Full() {
		row, ok, err := a.It.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.buf.AppendRow(row)
	}
	if a.buf.Len() == 0 {
		return nil, false, nil
	}
	return a.buf, true, nil
}

// Close implements BatchIterator.
func (a *BatchAdapter) Close() error { return a.It.Close() }

// Schema implements BatchIterator.
func (a *BatchAdapter) Schema() *tuple.Schema { return a.It.Schema() }

// RowAdapter exposes a BatchIterator through the classic row Iterator
// interface — the thin bridge that keeps the row-at-a-time API alive on
// top of the batched core. Rows are materialized per batch, so they stay
// valid after the underlying buffers are reused.
type RowAdapter struct {
	// B is the wrapped batch-native iterator.
	B   BatchIterator
	cur rowCursor
}

// Open implements Iterator.
func (r *RowAdapter) Open() error {
	r.cur.reset()
	return r.B.Open()
}

// Next implements Iterator.
func (r *RowAdapter) Next() (tuple.Row, bool, error) { return r.cur.next(r.B) }

// Close implements Iterator.
func (r *RowAdapter) Close() error {
	r.cur.reset()
	return r.B.Close()
}

// Schema implements Iterator.
func (r *RowAdapter) Schema() *tuple.Schema { return r.B.Schema() }

// rowCursor serves Next() for batch-native streaming operators: it drains
// the operator's own NextBatch and hands out materialized rows.
type rowCursor struct {
	rows []tuple.Row
	idx  int
}

func (c *rowCursor) reset() { c.rows, c.idx = nil, 0 }

func (c *rowCursor) next(bi BatchIterator) (tuple.Row, bool, error) {
	for c.idx >= len(c.rows) {
		b, ok, err := bi.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		c.rows, c.idx = b.Rows(), 0
	}
	row := c.rows[c.idx]
	c.idx++
	return row, true, nil
}

// serveRowSlice serves rows[*idx:] through a lazily allocated, reused
// batch, advancing *idx — the shared NextBatch body of every operator
// that holds its output as a materialized row slice.
func serveRowSlice(out **tuple.Batch, schema *tuple.Schema, rows []tuple.Row, idx *int) (*tuple.Batch, bool, error) {
	if *idx >= len(rows) {
		return nil, false, nil
	}
	if *out == nil {
		*out = tuple.NewBatch(schema, DefaultBatchSize)
	}
	b := *out
	b.Reset()
	n := len(rows) - *idx
	if n > b.Cap() {
		n = b.Cap()
	}
	for i := 0; i < n; i++ {
		b.AppendRow(rows[*idx+i])
	}
	*idx += n
	return b, true, nil
}

// CollectBatches fully drains a BatchIterator and materializes all rows.
func CollectBatches(bi BatchIterator) ([]tuple.Row, error) {
	if err := bi.Open(); err != nil {
		return nil, err
	}
	defer bi.Close()
	var out []tuple.Row
	for {
		b, ok, err := bi.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, b.Rows()...)
	}
}

// drainBatches opens bi, feeds every row to fn via a reused scratch row,
// and closes it. The scratch row is only valid within one fn call.
func drainBatches(bi BatchIterator, fn func(row tuple.Row) error) error {
	if err := bi.Open(); err != nil {
		bi.Close()
		return err
	}
	defer bi.Close()
	var scratch tuple.Row
	for {
		b, ok, err := bi.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i := 0; i < b.Len(); i++ {
			scratch = b.AppendRowTo(scratch[:0], i)
			if err := fn(scratch); err != nil {
				return err
			}
		}
	}
}
