package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// lazyTable builds a relation whose store serves lazily decoded v2
// segments, as objstore.BuildSegmentStoreLazy would.
func lazyTable(t *testing.T, rows []tuple.Row, perSeg int) (*catalog.TableMeta, map[segment.ObjectID]*segment.Segment) {
	t.Helper()
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "s", Kind: tuple.KindString},
		tuple.Column{Name: "f", Kind: tuple.KindFloat64},
	)
	segs := segment.Split(0, "lazy", rows, perSeg, 1e9)
	store := make(map[segment.ObjectID]*segment.Segment)
	lazy := make([]*segment.Segment, len(segs))
	for i, sg := range segs {
		data, err := sg.EncodeFormat(sch, segment.FormatV2)
		if err != nil {
			t.Fatal(err)
		}
		lz, err := segment.DecodeLazy(sch, data)
		if err != nil {
			t.Fatal(err)
		}
		lazy[i] = lz
		store[lz.ID] = lz
	}
	cat := catalog.New(0)
	tm, err := cat.AddTable("lazy", sch, lazy)
	if err != nil {
		t.Fatal(err)
	}
	return tm, store
}

func lazyRows(n int) []tuple.Row {
	out := make([]tuple.Row, n)
	for i := range out {
		out[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(string(rune('a' + i%3))), tuple.Float(float64(i) / 4)}
	}
	return out
}

func TestSeqScanLazyProjectedBatches(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(10), 4)
	scan := NewSeqScan(NewTestCtx(store), tm)
	scan.Project = []int{0} // only k
	rows, err := CollectBatches(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d: k=%v", i, r[0])
		}
		// Unprojected columns are typed zero values.
		if r[1].K != tuple.KindString || r[1].S != "" {
			t.Fatalf("row %d: s=%v, want zero string", i, r[1])
		}
		if r[2].K != tuple.KindFloat64 || r[2].F != 0 {
			t.Fatalf("row %d: f=%v, want zero float", i, r[2])
		}
	}
	b := scan.Bytes()
	if b.Fetched <= 0 || b.Decoded <= 0 || b.SkippedByProjection <= 0 {
		t.Fatalf("byte accounting %+v", b)
	}

	// The same scan without projection decodes more and skips nothing.
	full := NewSeqScan(NewTestCtx(store), tm)
	if _, err := CollectBatches(full); err != nil {
		t.Fatal(err)
	}
	fb := full.Bytes()
	if fb.SkippedByProjection != 0 || fb.Decoded <= b.Decoded {
		t.Fatalf("full scan accounting %+v vs projected %+v", fb, b)
	}
	if fb.Fetched != b.Fetched {
		t.Fatalf("fetched bytes differ: %d vs %d", fb.Fetched, b.Fetched)
	}
}

func TestSeqScanLazyRowProtocol(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(7), 3)
	scan := NewSeqScan(NewTestCtx(store), tm)
	// Drain through the row protocol explicitly (Collect would dispatch
	// to the batch path).
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	var rows []tuple.Row
	for {
		row, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	want := lazyRows(7)
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := range want {
		for c := range want[i] {
			if !tuple.Equal(rows[i][c], want[i][c]) {
				t.Fatalf("row %d col %d: %v != %v", i, c, rows[i][c], want[i][c])
			}
		}
	}
}

func TestSeqScanEmptyProjectionCountsRows(t *testing.T) {
	tm, store := lazyTable(t, lazyRows(9), 4)
	scan := NewSeqScan(NewTestCtx(store), tm)
	scan.Project = []int{}
	rows, err := CollectBatches(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	b := scan.Bytes()
	if b.Decoded != 0 || b.SkippedByProjection <= 0 {
		t.Fatalf("empty projection accounting %+v", b)
	}
}
