package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	// AggCount counts input rows (COUNT(*) with a nil Arg).
	AggCount AggKind = iota
	// AggSum sums the argument as float64.
	AggSum
	// AggMin keeps the smallest argument value seen.
	AggMin
	// AggMax keeps the largest argument value seen.
	AggMax
	// AggAvg reports sum/count of the argument as float64.
	AggAvg
)

// String returns the SQL-ish lowercase name of the aggregate.
func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[k]
}

// AggSpec is one aggregate output: Kind applied to Arg (nil for COUNT(*)).
// ArgKind declares the argument's type for MIN/MAX, whose output kind is
// data-dependent (it defaults to int64, the zero Kind).
type AggSpec struct {
	// Kind selects the aggregate function.
	Kind AggKind
	// Arg is the aggregated expression; nil means COUNT(*).
	Arg expr.Expr
	// Name labels the output column.
	Name string
	// ArgKind declares Arg's value kind (used by MIN/MAX output typing).
	ArgKind tuple.Kind
}

// GroupCol is one grouping column of a HashAgg.
type GroupCol struct {
	// Name labels the output column.
	Name string
	// Kind is the grouping expression's value kind.
	Kind tuple.Kind
	// E computes the grouping value from an input row.
	E expr.Expr
}

// HashAgg is a blocking hash aggregation with deterministic (sorted by
// group key) output order. The child is drained batch-at-a-time. With
// Parallelize(dop > 1) the drain runs on the morsel pool: every worker
// folds its morsels into a private accumulator map and the partial
// states are merged at drain time, so the sorted output is identical at
// any DOP.
type HashAgg struct {
	child  Iterator
	bchild BatchIterator
	groups []GroupCol
	aggs   []AggSpec
	schema *tuple.Schema
	dop    int

	out    []tuple.Row
	idx    int
	ob     *tuple.Batch
	ostats *OpStats
}

// NewHashAgg builds a grouped aggregation. With no group columns it
// produces exactly one row (global aggregates).
func NewHashAgg(child Iterator, groups []GroupCol, aggs []AggSpec) *HashAgg {
	cols := make([]tuple.Column, 0, len(groups)+len(aggs))
	for _, g := range groups {
		cols = append(cols, tuple.Column{Name: g.Name, Kind: g.Kind})
	}
	for _, a := range aggs {
		cols = append(cols, tuple.Column{Name: a.Name, Kind: aggOutputKind(a)})
	}
	return &HashAgg{child: child, bchild: AsBatch(child), groups: groups, aggs: aggs, schema: tuple.NewSchema(cols...)}
}

// aggOutputKind: COUNT yields int64, SUM/AVG yield float64, MIN/MAX yield
// the argument's declared kind.
func aggOutputKind(a AggSpec) tuple.Kind {
	switch a.Kind {
	case AggCount:
		return tuple.KindInt64
	case AggSum, AggAvg:
		return tuple.KindFloat64
	default:
		return a.ArgKind
	}
}

// Schema implements Iterator.
func (a *HashAgg) Schema() *tuple.Schema { return a.schema }

// setParallelism implements parallelizable.
func (a *HashAgg) setParallelism(dop int) { a.dop = normDOP(dop) }

// accum is one group's accumulator state.
type accum struct {
	key    string
	groupV tuple.Row
	counts []int64
	sums   []float64
	minmax []tuple.Value
	seen   []bool
}

// foldRow folds one input row into the accumulator map. It touches only
// groups and the row, so each parallel worker can fold into a private
// map without locking.
func (a *HashAgg) foldRow(groups map[string]*accum, row tuple.Row) error {
	gv := make(tuple.Row, len(a.groups))
	var kb strings.Builder
	for i, g := range a.groups {
		v, err := g.E.Eval(row)
		if err != nil {
			return err
		}
		gv[i] = v
		fmt.Fprintf(&kb, "%d|%s\x00", v.K, v.String())
	}
	key := kb.String()
	acc, ok := groups[key]
	if !ok {
		acc = &accum{
			key:    key,
			groupV: gv,
			counts: make([]int64, len(a.aggs)),
			sums:   make([]float64, len(a.aggs)),
			minmax: make([]tuple.Value, len(a.aggs)),
			seen:   make([]bool, len(a.aggs)),
		}
		groups[key] = acc
	}
	for i, spec := range a.aggs {
		var v tuple.Value
		if spec.Arg != nil {
			var err error
			v, err = spec.Arg.Eval(row)
			if err != nil {
				return err
			}
		}
		acc.counts[i]++
		switch spec.Kind {
		case AggSum, AggAvg:
			acc.sums[i] += v.AsFloat()
		case AggMin:
			if !acc.seen[i] || tuple.Compare(v, acc.minmax[i]) < 0 {
				acc.minmax[i] = v
			}
		case AggMax:
			if !acc.seen[i] || tuple.Compare(v, acc.minmax[i]) > 0 {
				acc.minmax[i] = v
			}
		}
		acc.seen[i] = true
	}
	return nil
}

// mergeAccum folds src into dst: counts and sums add, MIN/MAX compare,
// and the seen flags union — the partial-state merge of the parallel
// drain. COUNT and AVG need no special casing because both are derived
// from counts/sums at emit time.
func (a *HashAgg) mergeAccum(dst, src *accum) {
	for i, spec := range a.aggs {
		dst.counts[i] += src.counts[i]
		dst.sums[i] += src.sums[i]
		switch spec.Kind {
		case AggMin:
			if src.seen[i] && (!dst.seen[i] || tuple.Compare(src.minmax[i], dst.minmax[i]) < 0) {
				dst.minmax[i] = src.minmax[i]
			}
		case AggMax:
			if src.seen[i] && (!dst.seen[i] || tuple.Compare(src.minmax[i], dst.minmax[i]) > 0) {
				dst.minmax[i] = src.minmax[i]
			}
		}
		dst.seen[i] = dst.seen[i] || src.seen[i]
	}
}

// drainSerial aggregates the child on the calling goroutine (DOP=1).
func (a *HashAgg) drainSerial() (map[string]*accum, error) {
	groups := make(map[string]*accum)
	err := drainBatches(a.bchild, func(row tuple.Row) error {
		return a.foldRow(groups, row)
	})
	if err != nil {
		return nil, err
	}
	return groups, nil
}

// drainParallel aggregates the child on the morsel pool: the child is
// still pulled by the calling goroutine (so Fetcher/Clock stay on it),
// workers fold private maps, and the partials are merged serially at the
// end.
func (a *HashAgg) drainParallel() (map[string]*accum, error) {
	maps := make([]map[string]*accum, a.dop)
	scratch := make([]tuple.Row, a.dop)
	for w := range maps {
		maps[w] = make(map[string]*accum)
	}
	if err := a.bchild.Open(); err != nil {
		a.bchild.Close()
		return nil, err
	}
	err := runMorsels(a.bchild, a.dop, func(w int, b *tuple.Batch) error {
		n := b.Len()
		for i := 0; i < n; i++ {
			scratch[w] = b.AppendRowTo(scratch[w][:0], i)
			if err := a.foldRow(maps[w], scratch[w]); err != nil {
				return err
			}
		}
		return nil
	})
	if cerr := a.bchild.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	groups := maps[0]
	for _, m := range maps[1:] {
		for key, acc := range m {
			if dst, ok := groups[key]; ok {
				a.mergeAccum(dst, acc)
			} else {
				groups[key] = acc
			}
		}
	}
	return groups, nil
}

// Open implements Iterator: drains the child batch-at-a-time and
// aggregates, then renders the sorted output rows.
func (a *HashAgg) Open() error {
	var groups map[string]*accum
	var err error
	if a.dop > 1 {
		groups, err = a.drainParallel()
	} else {
		groups, err = a.drainSerial()
	}
	if err != nil {
		return err
	}
	// Global aggregation over zero rows still yields one row of zeros.
	if len(a.groups) == 0 && len(groups) == 0 {
		groups[""] = &accum{
			counts: make([]int64, len(a.aggs)),
			sums:   make([]float64, len(a.aggs)),
			minmax: make([]tuple.Value, len(a.aggs)),
			seen:   make([]bool, len(a.aggs)),
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	a.out = a.out[:0]
	for _, k := range keys {
		acc := groups[k]
		row := make(tuple.Row, 0, len(a.groups)+len(a.aggs))
		row = append(row, acc.groupV...)
		for i, spec := range a.aggs {
			switch spec.Kind {
			case AggCount:
				row = append(row, tuple.Int(acc.counts[i]))
			case AggSum:
				row = append(row, tuple.Float(acc.sums[i]))
			case AggAvg:
				if acc.counts[i] == 0 {
					row = append(row, tuple.Float(0))
				} else {
					row = append(row, tuple.Float(acc.sums[i]/float64(acc.counts[i])))
				}
			case AggMin, AggMax:
				row = append(row, acc.minmax[i])
			}
		}
		a.out = append(a.out, row)
	}
	a.idx = 0
	return nil
}

// Next implements Iterator.
func (a *HashAgg) Next() (tuple.Row, bool, error) {
	if a.idx >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.idx]
	a.idx++
	return r, true, nil
}

// NextBatch implements BatchIterator, sharing the row cursor with Next.
func (a *HashAgg) NextBatch() (*tuple.Batch, bool, error) {
	if a.ostats != nil {
		return timedBatch(a.ostats, a.nextBatch)
	}
	return a.nextBatch()
}

func (a *HashAgg) nextBatch() (*tuple.Batch, bool, error) {
	return serveRowSlice(&a.ob, a.schema, a.out, &a.idx)
}

// Close implements Iterator.
func (a *HashAgg) Close() error {
	a.out = nil
	return nil
}
