package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

func benchRows(n int) ([]tuple.Row, *tuple.Schema) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int(int64(i % 1000)), tuple.Str(fmt.Sprintf("val%d", i))}
	}
	return rows, sch
}

func BenchmarkHashJoin10k(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join := JoinOn(NewValues(sch, rows), NewValues(sch, rows), [][2]string{{"k", "k"}})
		n := 0
		if err := join.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := join.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		join.Close()
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFilterScan(b *testing.B) {
	rows, sch := benchRows(10000)
	pred := expr.ColGE(sch, "k", tuple.Int(500))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewFilter(NewValues(sch, rows), pred)
		out, err := Collect(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkHashAggGrouped(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg := NewHashAgg(NewValues(sch, rows),
			[]GroupCol{{Name: "k", Kind: tuple.KindInt64, E: expr.Bind(sch, "k")}},
			[]AggSpec{{Kind: AggCount, Name: "n"}})
		out, err := Collect(agg)
		if err != nil || len(out) != 1000 {
			b.Fatalf("groups %d err %v", len(out), err)
		}
	}
}

func BenchmarkSort10k(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSort(NewValues(sch, rows), []SortKey{{E: expr.Bind(sch, "v")}})
		out, err := Collect(s)
		if err != nil || len(out) != 10000 {
			b.Fatal(err)
		}
	}
}

// --- Row vs batch execution benchmarks ---
//
// The same physical plans driven through the two protocols: the row path
// pulls one tuple per Iterator.Next call (via the thin row cursor over the
// batched core), the batch path moves DefaultBatchSize rows per
// BatchIterator.NextBatch call.

// drainRows drives a plan row-at-a-time through the Iterator interface.
func drainRows(b *testing.B, it Iterator) int {
	b.Helper()
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

// drainBatchwise drives a plan batch-at-a-time through BatchIterator.
func drainBatchwise(b *testing.B, it Iterator) int {
	b.Helper()
	bi := AsBatch(it)
	if err := bi.Open(); err != nil {
		b.Fatal(err)
	}
	defer bi.Close()
	n := 0
	for {
		batch, ok, err := bi.NextBatch()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			return n
		}
		n += batch.Len()
	}
}

// rowOnly hides an operator's batch interface, forcing row-at-a-time flow
// across the edge above it — the seed engine's Volcano protocol, where
// every tuple crosses an Iterator.Next interface call.
type rowOnly struct{ it Iterator }

func (r rowOnly) Open() error                    { return r.it.Open() }
func (r rowOnly) Next() (tuple.Row, bool, error) { return r.it.Next() }
func (r rowOnly) Close() error                   { return r.it.Close() }
func (r rowOnly) Schema() *tuple.Schema          { return r.it.Schema() }

// benchmarkRowVsBatch runs the same plan under both protocols. mkPlan
// receives an edge wrapper applied between operators: the row variant
// severs the batch interface at every edge, the batch variant keeps
// batches flowing end-to-end.
func benchmarkRowVsBatch(b *testing.B, mkPlan func(edge func(Iterator) Iterator) Iterator, wantRows int) {
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := drainRows(b, mkPlan(func(it Iterator) Iterator { return rowOnly{it} })); n != wantRows {
				b.Fatalf("rows %d, want %d", n, wantRows)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := drainBatchwise(b, mkPlan(func(it Iterator) Iterator { return it })); n != wantRows {
				b.Fatalf("rows %d, want %d", n, wantRows)
			}
		}
	})
}

func BenchmarkRowVsBatchFilter(b *testing.B) {
	rows, sch := benchRows(10000)
	pred := expr.ColGE(sch, "k", tuple.Int(500))
	benchmarkRowVsBatch(b, func(edge func(Iterator) Iterator) Iterator {
		return NewFilter(edge(NewValues(sch, rows)), pred)
	}, 5000)
}

func BenchmarkRowVsBatchJoin(b *testing.B) {
	rows, sch := benchRows(10000)
	benchmarkRowVsBatch(b, func(edge func(Iterator) Iterator) Iterator {
		return JoinOn(edge(NewValues(sch, rows)), edge(NewValues(sch, rows)), [][2]string{{"k", "k"}})
	}, 100000)
}

// benchJoinAggDataset builds a multi-segment star join: a fact table of
// 40k rows across 8 segments and a dimension of 1k rows across 2
// segments, backed by an in-memory fetcher.
func benchJoinAggDataset() (*Ctx, *catalog.TableMeta, *catalog.TableMeta) {
	factSch := tuple.NewSchema(
		tuple.Column{Name: "f_id", Kind: tuple.KindInt64},
		tuple.Column{Name: "f_dim", Kind: tuple.KindInt64},
		tuple.Column{Name: "f_val", Kind: tuple.KindFloat64},
	)
	dimSch := tuple.NewSchema(
		tuple.Column{Name: "d_id", Kind: tuple.KindInt64},
		tuple.Column{Name: "d_grp", Kind: tuple.KindInt64},
	)
	factRows := make([]tuple.Row, 40000)
	for i := range factRows {
		factRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Int(int64(i % 1000)), tuple.Float(float64(i % 97))}
	}
	dimRows := make([]tuple.Row, 1000)
	for i := range dimRows {
		dimRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Int(int64(i % 10))}
	}
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := catalog.New(0)
	factSegs := segment.Split(0, "fact", factRows, 5000, 1e9)
	dimSegs := segment.Split(0, "dim", dimRows, 500, 1e9)
	for _, sg := range factSegs {
		store[sg.ID] = sg
	}
	for _, sg := range dimSegs {
		store[sg.ID] = sg
	}
	fact := cat.MustAddTable("fact", factSch, factSegs)
	dim := cat.MustAddTable("dim", dimSch, dimSegs)
	return NewTestCtx(store), fact, dim
}

// BenchmarkRowVsBatchJoinAgg is the acceptance workload: a multi-segment
// scan → filter → hash join → grouped aggregation pipeline, row path vs
// batch path.
func BenchmarkRowVsBatchJoinAgg(b *testing.B) {
	ctx, fact, dim := benchJoinAggDataset()
	mkPlan := func(edge func(Iterator) Iterator) Iterator {
		scanF := NewFilter(edge(NewSeqScan(ctx, fact)), expr.ColGE(fact.Schema, "f_id", tuple.Int(1000)))
		join := JoinOn(edge(scanF), edge(NewSeqScan(ctx, dim)), [][2]string{{"f_dim", "d_id"}})
		return NewHashAgg(edge(join),
			[]GroupCol{{Name: "d_grp", Kind: tuple.KindInt64, E: expr.Bind(join.Schema(), "d_grp")}},
			[]AggSpec{
				{Kind: AggSum, Arg: expr.Bind(join.Schema(), "f_val"), Name: "s"},
				{Kind: AggCount, Name: "n"},
			})
	}
	benchmarkRowVsBatch(b, mkPlan, 10)
}

// BenchmarkParallelJoinAgg runs the same multi-segment join+agg pipeline
// end-to-end in batches at several degrees of parallelism — the
// acceptance comparison for the morsel-driven execution mode. The dop-1
// sub-bench is the serial PR 1 path; results are checked identical at
// every DOP.
func BenchmarkParallelJoinAgg(b *testing.B) {
	ctx, fact, dim := benchJoinAggDataset()
	mkPlan := func() Iterator {
		scanF := NewFilter(NewSeqScan(ctx, fact), expr.ColGE(fact.Schema, "f_id", tuple.Int(1000)))
		join := JoinOn(scanF, NewSeqScan(ctx, dim), [][2]string{{"f_dim", "d_id"}})
		return NewHashAgg(join,
			[]GroupCol{{Name: "d_grp", Kind: tuple.KindInt64, E: expr.Bind(join.Schema(), "d_grp")}},
			[]AggSpec{
				{Kind: AggSum, Arg: expr.Bind(join.Schema(), "f_val"), Name: "s"},
				{Kind: AggCount, Name: "n"},
			})
	}
	dops := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		dops = append(dops, n)
	}
	for _, dop := range dops {
		b.Run(fmt.Sprintf("dop-%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if n := drainBatchwise(b, Parallelize(mkPlan(), dop)); n != 10 {
					b.Fatalf("rows %d, want 10", n)
				}
			}
		})
	}
}
