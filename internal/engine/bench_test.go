package engine

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/tuple"
)

func benchRows(n int) ([]tuple.Row, *tuple.Schema) {
	sch := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt64},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.Int(int64(i % 1000)), tuple.Str(fmt.Sprintf("val%d", i))}
	}
	return rows, sch
}

func BenchmarkHashJoin10k(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join := JoinOn(NewValues(sch, rows), NewValues(sch, rows), [][2]string{{"k", "k"}})
		n := 0
		if err := join.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := join.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		join.Close()
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFilterScan(b *testing.B) {
	rows, sch := benchRows(10000)
	pred := expr.ColGE(sch, "k", tuple.Int(500))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewFilter(NewValues(sch, rows), pred)
		out, err := Collect(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkHashAggGrouped(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg := NewHashAgg(NewValues(sch, rows),
			[]GroupCol{{Name: "k", Kind: tuple.KindInt64, E: expr.Bind(sch, "k")}},
			[]AggSpec{{Kind: AggCount, Name: "n"}})
		out, err := Collect(agg)
		if err != nil || len(out) != 1000 {
			b.Fatalf("groups %d err %v", len(out), err)
		}
	}
}

func BenchmarkSort10k(b *testing.B) {
	rows, sch := benchRows(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSort(NewValues(sch, rows), []SortKey{{E: expr.Bind(sch, "v")}})
		out, err := Collect(s)
		if err != nil || len(out) != 10000 {
			b.Fatal(err)
		}
	}
}
