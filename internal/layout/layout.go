// Package layout implements object-to-disk-group placement policies for
// the CSD, and — since the scale-out refactor — the segment→device
// placement layer that spreads disk groups over a fleet of devices with
// optional replication. In a virtualized data center the database has no
// control over placement (§3.2 of the paper), so experiments exercise
// several layouts: everything in one group, K clients per group, one
// client per group, the "incremental" split layout of §5.2.3, and the
// skewed 2-2-1 layout used by the scheduling-fairness experiment
// (§5.2.5).
//
// Errors follow the repo's typed-error convention: malformed policy
// configurations surface as *PolicyError and out-of-range group ids as
// *GroupRangeError, so callers (Cluster.Run, tests, CLIs) can
// distinguish "the layout was configured wrong" from runtime faults.
package layout

import (
	"fmt"

	"repro/internal/segment"
)

// PolicyError reports a malformed layout-policy configuration — a
// non-positive group count, too few group entries for the tenants, a
// relocation onto the failed group itself. It is a configuration error:
// the policy can never produce a valid assignment, no retry will help.
type PolicyError struct {
	// Policy names the policy (or operation) that rejected its config.
	Policy string
	// Reason says what was wrong.
	Reason string
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("layout: %s: %s", e.Policy, e.Reason)
}

// GroupRangeError reports a group id outside [0, NumGroups) handed to
// an assignment operation.
type GroupRangeError struct {
	// Op is the operation that observed the bad id ("Place",
	// "RelocateGroup", ...).
	Op string
	// Group is the offending id; NumGroups the assignment's group count.
	Group, NumGroups int
}

func (e *GroupRangeError) Error() string {
	return fmt.Sprintf("layout: %s: group %d out of range [0,%d)", e.Op, e.Group, e.NumGroups)
}

// Assignment maps every object to its disk group.
type Assignment struct {
	groups    map[segment.ObjectID]int
	numGroups int
}

// NewAssignment returns an empty assignment with the given group count.
// A non-positive count is a *PolicyError.
func NewAssignment(numGroups int) (*Assignment, error) {
	if numGroups <= 0 {
		return nil, &PolicyError{Policy: "NewAssignment", Reason: fmt.Sprintf("numGroups %d must be positive", numGroups)}
	}
	return &Assignment{groups: make(map[segment.ObjectID]int), numGroups: numGroups}, nil
}

// MustAssignment is NewAssignment for static configurations known to be
// valid (tests, examples); it panics on error.
func MustAssignment(numGroups int) *Assignment {
	a, err := NewAssignment(numGroups)
	if err != nil {
		panic(err)
	}
	return a
}

// Place assigns an object to a group. A group outside [0, NumGroups())
// is a *GroupRangeError.
func (a *Assignment) Place(id segment.ObjectID, group int) error {
	if group < 0 || group >= a.numGroups {
		return &GroupRangeError{Op: "Place", Group: group, NumGroups: a.numGroups}
	}
	a.groups[id] = group
	return nil
}

// GroupOf returns the group holding the object.
func (a *Assignment) GroupOf(id segment.ObjectID) (int, error) {
	g, ok := a.groups[id]
	if !ok {
		return 0, fmt.Errorf("layout: object %v not placed", id)
	}
	return g, nil
}

// NumGroups returns the number of disk groups.
func (a *Assignment) NumGroups() int { return a.numGroups }

// NumObjects returns the number of placed objects.
func (a *Assignment) NumObjects() int { return len(a.groups) }

// Each calls f for every placed object. Iteration order is unspecified
// (map order); callers needing determinism must sort what they collect.
func (a *Assignment) Each(f func(id segment.ObjectID, group int)) {
	for id, g := range a.groups {
		f(id, g)
	}
}

// TenantObjects lists the objects owned by one tenant (database client),
// in catalog order.
type TenantObjects struct {
	Tenant  int
	Objects []segment.ObjectID
}

// Policy produces an assignment for a set of tenants' objects. A policy
// whose configuration cannot describe the tenants returns a
// *PolicyError.
type Policy interface {
	Name() string
	Assign(tenants []TenantObjects) (*Assignment, error)
}

// AllInOne places every object in a single group: the configuration used
// to emulate the HDD capacity tier ("ideal") and the Allin1 layout.
type AllInOne struct{}

// Name implements Policy.
func (AllInOne) Name() string { return "all-in-one" }

// Assign implements Policy.
func (AllInOne) Assign(tenants []TenantObjects) (*Assignment, error) {
	a := MustAssignment(1)
	for _, t := range tenants {
		for _, id := range t.Objects {
			if err := a.Place(id, 0); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// ClientsPerGroup packs K consecutive tenants into each group. K=1 is the
// paper's default one-group-per-client layout.
type ClientsPerGroup struct{ K int }

// Name implements Policy.
func (p ClientsPerGroup) Name() string { return fmt.Sprintf("%d-clients-per-group", p.K) }

// Assign implements Policy.
func (p ClientsPerGroup) Assign(tenants []TenantObjects) (*Assignment, error) {
	if p.K <= 0 {
		return nil, &PolicyError{Policy: p.Name(), Reason: "K must be positive"}
	}
	n := (len(tenants) + p.K - 1) / p.K
	if n == 0 {
		n = 1
	}
	a := MustAssignment(n)
	for i, t := range tenants {
		g := i / p.K
		for _, id := range t.Objects {
			if err := a.Place(id, g); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// OnePerGroup is the paper's default layout: each client's data in its own
// dedicated group.
func OnePerGroup() Policy { return ClientsPerGroup{K: 1} }

// Incremental reproduces §5.2.3's "Increm." layout: each tenant's data is
// split into two halves stored on adjacent groups, so group g holds the
// first half of tenant g's data and the second half of tenant g-1's:
// G1={C1.1, C4.2}, G2={C1.2, C2.1}, ... for four tenants.
type Incremental struct{}

// Name implements Policy.
func (Incremental) Name() string { return "incremental" }

// Assign implements Policy.
func (Incremental) Assign(tenants []TenantObjects) (*Assignment, error) {
	n := len(tenants)
	if n == 0 {
		return MustAssignment(1), nil
	}
	a := MustAssignment(n)
	for i, t := range tenants {
		half := (len(t.Objects) + 1) / 2
		for j, id := range t.Objects {
			g := i
			if j >= half {
				g = (i + 1) % n
			}
			if err := a.Place(id, g); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// ByTenant places tenant i in Groups[i]; the scheduling-fairness
// experiment uses ByTenant{Groups: []int{0, 0, 1, 1, 2}} (two groups with
// two clients each, one group with a single client).
type ByTenant struct{ Groups []int }

// Name implements Policy.
func (p ByTenant) Name() string { return fmt.Sprintf("by-tenant%v", p.Groups) }

// Assign implements Policy.
func (p ByTenant) Assign(tenants []TenantObjects) (*Assignment, error) {
	if len(p.Groups) < len(tenants) {
		return nil, &PolicyError{
			Policy: "by-tenant",
			Reason: fmt.Sprintf("%d group entries for %d tenants", len(p.Groups), len(tenants)),
		}
	}
	max := 0
	for _, g := range p.Groups[:len(tenants)] {
		if g > max {
			max = g
		}
	}
	a := MustAssignment(max + 1)
	for i, t := range tenants {
		for _, id := range t.Objects {
			if err := a.Place(id, p.Groups[i]); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// RelocateGroup reassigns every object in a failed group to fallback,
// modeling §3.2's "a set of disks could fail in a group causing the CSD
// to temporarily stop allocating data in that group": subsequent runs see
// the fragmented layout the failure produced. It returns the number of
// objects moved. Relocating a group onto itself is a *PolicyError; a
// fallback outside [0, NumGroups()) is a *GroupRangeError.
func (a *Assignment) RelocateGroup(failed, fallback int) (int, error) {
	if failed == fallback {
		return 0, &PolicyError{Policy: "RelocateGroup", Reason: "relocation target equals failed group"}
	}
	if fallback < 0 || fallback >= a.numGroups {
		return 0, &GroupRangeError{Op: "RelocateGroup", Group: fallback, NumGroups: a.numGroups}
	}
	moved := 0
	for id, g := range a.groups {
		if g == failed {
			a.groups[id] = fallback
			moved++
		}
	}
	return moved, nil
}

// RoundRobinObjects spreads each tenant's objects across all groups in
// object order — the adversarial "no locality" placement a shared CSD may
// produce for load balancing (§3.2). Used by property tests and ablations.
type RoundRobinObjects struct{ NumGroups int }

// Name implements Policy.
func (p RoundRobinObjects) Name() string { return fmt.Sprintf("round-robin-%d", p.NumGroups) }

// Assign implements Policy.
func (p RoundRobinObjects) Assign(tenants []TenantObjects) (*Assignment, error) {
	if p.NumGroups <= 0 {
		return nil, &PolicyError{Policy: p.Name(), Reason: "NumGroups must be positive"}
	}
	a := MustAssignment(p.NumGroups)
	for _, t := range tenants {
		for j, id := range t.Objects {
			if err := a.Place(id, j%p.NumGroups); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}
