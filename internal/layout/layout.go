// Package layout implements object-to-disk-group placement policies for
// the CSD. In a virtualized data center the database has no control over
// placement (§3.2 of the paper), so experiments exercise several layouts:
// everything in one group, K clients per group, one client per group, the
// "incremental" split layout of §5.2.3, and the skewed 2-2-1 layout used
// by the scheduling-fairness experiment (§5.2.5).
package layout

import (
	"fmt"

	"repro/internal/segment"
)

// Assignment maps every object to its disk group.
type Assignment struct {
	groups    map[segment.ObjectID]int
	numGroups int
}

// NewAssignment returns an empty assignment with the given group count.
func NewAssignment(numGroups int) *Assignment {
	if numGroups <= 0 {
		panic("layout: numGroups must be positive")
	}
	return &Assignment{groups: make(map[segment.ObjectID]int), numGroups: numGroups}
}

// Place assigns an object to a group.
func (a *Assignment) Place(id segment.ObjectID, group int) {
	if group < 0 || group >= a.numGroups {
		panic(fmt.Sprintf("layout: group %d out of range [0,%d)", group, a.numGroups))
	}
	a.groups[id] = group
}

// GroupOf returns the group holding the object.
func (a *Assignment) GroupOf(id segment.ObjectID) (int, error) {
	g, ok := a.groups[id]
	if !ok {
		return 0, fmt.Errorf("layout: object %v not placed", id)
	}
	return g, nil
}

// NumGroups returns the number of disk groups.
func (a *Assignment) NumGroups() int { return a.numGroups }

// NumObjects returns the number of placed objects.
func (a *Assignment) NumObjects() int { return len(a.groups) }

// TenantObjects lists the objects owned by one tenant (database client),
// in catalog order.
type TenantObjects struct {
	Tenant  int
	Objects []segment.ObjectID
}

// Policy produces an assignment for a set of tenants' objects.
type Policy interface {
	Name() string
	Assign(tenants []TenantObjects) *Assignment
}

// AllInOne places every object in a single group: the configuration used
// to emulate the HDD capacity tier ("ideal") and the Allin1 layout.
type AllInOne struct{}

func (AllInOne) Name() string { return "all-in-one" }

func (AllInOne) Assign(tenants []TenantObjects) *Assignment {
	a := NewAssignment(1)
	for _, t := range tenants {
		for _, id := range t.Objects {
			a.Place(id, 0)
		}
	}
	return a
}

// ClientsPerGroup packs K consecutive tenants into each group. K=1 is the
// paper's default one-group-per-client layout.
type ClientsPerGroup struct{ K int }

func (p ClientsPerGroup) Name() string { return fmt.Sprintf("%d-clients-per-group", p.K) }

func (p ClientsPerGroup) Assign(tenants []TenantObjects) *Assignment {
	if p.K <= 0 {
		panic("layout: ClientsPerGroup.K must be positive")
	}
	n := (len(tenants) + p.K - 1) / p.K
	if n == 0 {
		n = 1
	}
	a := NewAssignment(n)
	for i, t := range tenants {
		g := i / p.K
		for _, id := range t.Objects {
			a.Place(id, g)
		}
	}
	return a
}

// OnePerGroup is the paper's default layout: each client's data in its own
// dedicated group.
func OnePerGroup() Policy { return ClientsPerGroup{K: 1} }

// Incremental reproduces §5.2.3's "Increm." layout: each tenant's data is
// split into two halves stored on adjacent groups, so group g holds the
// first half of tenant g's data and the second half of tenant g-1's:
// G1={C1.1, C4.2}, G2={C1.2, C2.1}, ... for four tenants.
type Incremental struct{}

func (Incremental) Name() string { return "incremental" }

func (Incremental) Assign(tenants []TenantObjects) *Assignment {
	n := len(tenants)
	if n == 0 {
		return NewAssignment(1)
	}
	a := NewAssignment(n)
	for i, t := range tenants {
		half := (len(t.Objects) + 1) / 2
		for j, id := range t.Objects {
			if j < half {
				a.Place(id, i)
			} else {
				a.Place(id, (i+1)%n)
			}
		}
	}
	return a
}

// ByTenant places tenant i in Groups[i]; the scheduling-fairness
// experiment uses ByTenant{Groups: []int{0, 0, 1, 1, 2}} (two groups with
// two clients each, one group with a single client).
type ByTenant struct{ Groups []int }

func (p ByTenant) Name() string { return fmt.Sprintf("by-tenant%v", p.Groups) }

func (p ByTenant) Assign(tenants []TenantObjects) *Assignment {
	if len(p.Groups) < len(tenants) {
		panic("layout: ByTenant has fewer group entries than tenants")
	}
	max := 0
	for _, g := range p.Groups[:len(tenants)] {
		if g > max {
			max = g
		}
	}
	a := NewAssignment(max + 1)
	for i, t := range tenants {
		for _, id := range t.Objects {
			a.Place(id, p.Groups[i])
		}
	}
	return a
}

// RelocateGroup reassigns every object in a failed group to fallback,
// modeling §3.2's "a set of disks could fail in a group causing the CSD
// to temporarily stop allocating data in that group": subsequent runs see
// the fragmented layout the failure produced. It returns the number of
// objects moved.
func (a *Assignment) RelocateGroup(failed, fallback int) int {
	if failed == fallback {
		panic("layout: relocation target equals failed group")
	}
	if fallback < 0 || fallback >= a.numGroups {
		panic(fmt.Sprintf("layout: fallback group %d out of range [0,%d)", fallback, a.numGroups))
	}
	moved := 0
	for id, g := range a.groups {
		if g == failed {
			a.groups[id] = fallback
			moved++
		}
	}
	return moved
}

// RoundRobinObjects spreads each tenant's objects across all groups in
// object order — the adversarial "no locality" placement a shared CSD may
// produce for load balancing (§3.2). Used by property tests and ablations.
type RoundRobinObjects struct{ NumGroups int }

func (p RoundRobinObjects) Name() string { return fmt.Sprintf("round-robin-%d", p.NumGroups) }

func (p RoundRobinObjects) Assign(tenants []TenantObjects) *Assignment {
	a := NewAssignment(p.NumGroups)
	for _, t := range tenants {
		for j, id := range t.Objects {
			a.Place(id, j%p.NumGroups)
		}
	}
	return a
}
