package layout

import (
	"errors"
	"testing"

	"repro/internal/segment"
)

func tenant(n, objs int) TenantObjects {
	t := TenantObjects{Tenant: n}
	for i := 0; i < objs; i++ {
		t.Objects = append(t.Objects, segment.ObjectID{Tenant: n, Table: "t", Index: i})
	}
	return t
}

func mustAssign(t *testing.T, p Policy, tens []TenantObjects) *Assignment {
	t.Helper()
	a, err := p.Assign(tens)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return a
}

func groupsOf(t *testing.T, a *Assignment, to TenantObjects) []int {
	t.Helper()
	out := make([]int, len(to.Objects))
	for i, id := range to.Objects {
		g, err := a.GroupOf(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = g
	}
	return out
}

func TestAllInOne(t *testing.T) {
	a := mustAssign(t, AllInOne{}, []TenantObjects{tenant(0, 3), tenant(1, 2)})
	if a.NumGroups() != 1 {
		t.Fatalf("groups %d", a.NumGroups())
	}
	if a.NumObjects() != 5 {
		t.Fatalf("objects %d", a.NumObjects())
	}
	for _, to := range []TenantObjects{tenant(0, 3), tenant(1, 2)} {
		for _, g := range groupsOf(t, a, to) {
			if g != 0 {
				t.Fatal("object not in group 0")
			}
		}
	}
}

func TestOnePerGroup(t *testing.T) {
	tens := []TenantObjects{tenant(0, 2), tenant(1, 2), tenant(2, 2)}
	a := mustAssign(t, OnePerGroup(), tens)
	if a.NumGroups() != 3 {
		t.Fatalf("groups %d", a.NumGroups())
	}
	for i, to := range tens {
		for _, g := range groupsOf(t, a, to) {
			if g != i {
				t.Fatalf("tenant %d object in group %d", i, g)
			}
		}
	}
}

func TestTwoClientsPerGroup(t *testing.T) {
	tens := []TenantObjects{tenant(0, 1), tenant(1, 1), tenant(2, 1), tenant(3, 1)}
	a := mustAssign(t, ClientsPerGroup{K: 2}, tens)
	if a.NumGroups() != 2 {
		t.Fatalf("groups %d", a.NumGroups())
	}
	want := []int{0, 0, 1, 1}
	for i, to := range tens {
		if g := groupsOf(t, a, to)[0]; g != want[i] {
			t.Fatalf("tenant %d in group %d, want %d", i, g, want[i])
		}
	}
}

func TestIncrementalSplitsHalves(t *testing.T) {
	// Four tenants with 4 objects each: group g holds tenant g's first
	// half and tenant (g-1 mod 4)'s second half (§5.2.3).
	tens := []TenantObjects{tenant(0, 4), tenant(1, 4), tenant(2, 4), tenant(3, 4)}
	a := mustAssign(t, Incremental{}, tens)
	if a.NumGroups() != 4 {
		t.Fatalf("groups %d", a.NumGroups())
	}
	for i, to := range tens {
		gs := groupsOf(t, a, to)
		for j, g := range gs {
			want := i
			if j >= 2 {
				want = (i + 1) % 4
			}
			if g != want {
				t.Fatalf("tenant %d object %d in group %d, want %d", i, j, g, want)
			}
		}
	}
}

func TestIncrementalOddSplit(t *testing.T) {
	a := mustAssign(t, Incremental{}, []TenantObjects{tenant(0, 3), tenant(1, 3)})
	gs := groupsOf(t, a, tenant(0, 3))
	// ceil(3/2)=2 objects in own group, 1 in the next.
	if gs[0] != 0 || gs[1] != 0 || gs[2] != 1 {
		t.Fatalf("groups %v", gs)
	}
}

func TestByTenantSkewed(t *testing.T) {
	tens := []TenantObjects{tenant(0, 1), tenant(1, 1), tenant(2, 1), tenant(3, 1), tenant(4, 1)}
	a := mustAssign(t, ByTenant{Groups: []int{0, 0, 1, 1, 2}}, tens)
	if a.NumGroups() != 3 {
		t.Fatalf("groups %d", a.NumGroups())
	}
	want := []int{0, 0, 1, 1, 2}
	for i, to := range tens {
		if g := groupsOf(t, a, to)[0]; g != want[i] {
			t.Fatalf("tenant %d group %d", i, g)
		}
	}
}

func TestRoundRobinObjects(t *testing.T) {
	a := mustAssign(t, RoundRobinObjects{NumGroups: 3}, []TenantObjects{tenant(0, 7)})
	gs := groupsOf(t, a, tenant(0, 7))
	for i, g := range gs {
		if g != i%3 {
			t.Fatalf("object %d in group %d", i, g)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	policies := []Policy{
		AllInOne{},
		ClientsPerGroup{K: 2},
		OnePerGroup(),
		Incremental{},
		ByTenant{Groups: []int{0, 1}},
		RoundRobinObjects{NumGroups: 3},
	}
	seen := map[string]bool{}
	for _, p := range policies {
		name := p.Name()
		if name == "" {
			t.Fatalf("%T has empty name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate policy name %q", name)
		}
		seen[name] = true
	}
}

func TestClientsPerGroupValidation(t *testing.T) {
	_, err := ClientsPerGroup{K: 0}.Assign([]TenantObjects{tenant(0, 1)})
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("K=0 accepted: %v", err)
	}
}

func TestIncrementalEmptyTenants(t *testing.T) {
	a := mustAssign(t, Incremental{}, nil)
	if a.NumGroups() != 1 || a.NumObjects() != 0 {
		t.Fatalf("empty incremental: %d groups %d objects", a.NumGroups(), a.NumObjects())
	}
}

func TestByTenantTooFewGroups(t *testing.T) {
	_, err := ByTenant{Groups: []int{0}}.Assign([]TenantObjects{tenant(0, 1), tenant(1, 1)})
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("short Groups accepted: %v", err)
	}
}

func TestUnplacedObjectError(t *testing.T) {
	a := MustAssignment(1)
	if _, err := a.GroupOf(segment.ObjectID{Table: "x"}); err == nil {
		t.Fatal("unplaced object lookup succeeded")
	}
}

func TestNewAssignmentValidation(t *testing.T) {
	_, err := NewAssignment(0)
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("numGroups=0 accepted: %v", err)
	}
}

func TestRelocateGroup(t *testing.T) {
	tens := []TenantObjects{tenant(0, 2), tenant(1, 2), tenant(2, 2)}
	a := mustAssign(t, OnePerGroup(), tens)
	moved, err := a.RelocateGroup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved %d, want 2", moved)
	}
	for _, id := range tens[1].Objects {
		g, err := a.GroupOf(id)
		if err != nil || g != 2 {
			t.Fatalf("object %v in group %d (%v)", id, g, err)
		}
	}
	// Other tenants untouched.
	if g, _ := a.GroupOf(tens[0].Objects[0]); g != 0 {
		t.Fatalf("tenant 0 moved to %d", g)
	}
}

func TestRelocateGroupErrors(t *testing.T) {
	a := MustAssignment(2)
	var pe *PolicyError
	if _, err := a.RelocateGroup(1, 1); !errors.As(err, &pe) {
		t.Fatalf("self-relocation accepted: %v", err)
	}
	var re *GroupRangeError
	if _, err := a.RelocateGroup(0, 5); !errors.As(err, &re) {
		t.Fatalf("out-of-range fallback accepted: %v", err)
	}
}

func TestPlaceOutOfRange(t *testing.T) {
	a := MustAssignment(2)
	err := a.Place(segment.ObjectID{Table: "x"}, 5)
	var re *GroupRangeError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-range group accepted: %v", err)
	}
	if re.Group != 5 || re.NumGroups != 2 {
		t.Fatalf("error detail %+v", re)
	}
}
