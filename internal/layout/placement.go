package layout

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/segment"
)

// This file is the scale-out half of the package: once a Policy has
// mapped objects to disk groups, a Placement maps those groups onto a
// fleet of devices and decides which objects exist on more than one of
// them. Groups keep their global ids on every device — a device's
// Assignment is a filtered view of the cluster-wide one, holding only
// the objects that device stores — so per-device schedulers keep their
// existing contract (they only ever see groups with pending requests).

// ReplicationKind selects how many devices hold each object.
type ReplicationKind uint8

const (
	// ReplicateNone stores each object only on its primary device.
	ReplicateNone ReplicationKind = iota
	// ReplicateHot additionally stores the hottest objects — ranked by
	// access count from the workload's statistics — on one extra device.
	ReplicateHot
	// ReplicateFull stores every object on every device.
	ReplicateFull
)

// Replication is a placement's replication policy.
type Replication struct {
	Kind ReplicationKind
	// Hot caps how many objects ReplicateHot replicates: the top Hot by
	// access count (ties broken by object id for determinism). Hot <= 0
	// means "every object with a positive access count" — in a
	// repeated-query workload, exactly the demanded working set.
	Hot int
}

// String renders the policy in the form ParseReplication accepts.
func (r Replication) String() string {
	switch r.Kind {
	case ReplicateFull:
		return "full"
	case ReplicateHot:
		if r.Hot > 0 {
			return fmt.Sprintf("hot:%d", r.Hot)
		}
		return "hot"
	default:
		return "none"
	}
}

// ParseReplication parses "none", "full", "hot" (all demanded objects)
// or "hot:N" (top N by access count) — the grammar of the CLIs'
// -replication flag.
func ParseReplication(s string) (Replication, error) {
	switch {
	case s == "" || s == "none":
		return Replication{}, nil
	case s == "full":
		return Replication{Kind: ReplicateFull}, nil
	case s == "hot":
		return Replication{Kind: ReplicateHot}, nil
	case strings.HasPrefix(s, "hot:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "hot:"))
		if err != nil || n <= 0 {
			return Replication{}, fmt.Errorf("layout: replication %q: want hot:N with N >= 1", s)
		}
		return Replication{Kind: ReplicateHot, Hot: n}, nil
	default:
		return Replication{}, fmt.Errorf("layout: unknown replication %q (want none, hot, hot:N or full)", s)
	}
}

// Placement maps every object of a cluster-wide Assignment onto one or
// more devices. Device ids are [0, NumDevices); an object's primary is
// its group modulo the device count, so a multi-group layout spreads
// groups — and therefore group-switch work — across the fleet.
type Placement struct {
	devices    int
	rep        Replication
	replicas   map[segment.ObjectID][]int // devices holding the object, primary first
	perDevice  []*Assignment
	replicated int
}

// BuildPlacement spreads the assignment's groups over `devices` devices
// and applies the replication policy. heat gives per-object access
// counts (from workload statistics) and is consulted only by
// ReplicateHot; nil heat means nothing is hot. A non-positive device
// count is a *PolicyError.
func BuildPlacement(a *Assignment, devices int, rep Replication, heat map[segment.ObjectID]int) (*Placement, error) {
	if devices <= 0 {
		return nil, &PolicyError{Policy: "BuildPlacement", Reason: fmt.Sprintf("device count %d must be positive", devices)}
	}
	p := &Placement{
		devices:   devices,
		rep:       rep,
		replicas:  make(map[segment.ObjectID][]int, a.NumObjects()),
		perDevice: make([]*Assignment, devices),
	}
	for d := range p.perDevice {
		p.perDevice[d] = MustAssignment(a.NumGroups())
	}
	place := func(id segment.ObjectID, group, dev int) error {
		p.replicas[id] = append(p.replicas[id], dev)
		return p.perDevice[dev].Place(id, group)
	}
	var err error
	a.Each(func(id segment.ObjectID, g int) {
		if err != nil {
			return
		}
		err = place(id, g, g%devices)
	})
	if err != nil {
		return nil, err
	}
	switch rep.Kind {
	case ReplicateNone:
	case ReplicateFull:
		if devices > 1 {
			a.Each(func(id segment.ObjectID, g int) {
				if err != nil {
					return
				}
				primary := g % devices
				for d := 0; d < devices; d++ {
					if d == primary {
						continue
					}
					err = place(id, g, d)
				}
			})
			if err != nil {
				return nil, err
			}
			p.replicated = a.NumObjects()
		}
	case ReplicateHot:
		if devices > 1 {
			for _, id := range hotObjects(heat, rep.Hot) {
				g, gerr := a.GroupOf(id)
				if gerr != nil {
					continue // hot object outside this assignment: nothing to replicate
				}
				primary := g % devices
				if err := place(id, g, (primary+1)%devices); err != nil {
					return nil, err
				}
				p.replicated++
			}
		}
	default:
		return nil, &PolicyError{Policy: "BuildPlacement", Reason: fmt.Sprintf("unknown replication kind %d", rep.Kind)}
	}
	return p, nil
}

// hotObjects ranks the heat map's objects by count descending (object
// id ascending on ties, so the selection is deterministic) and returns
// the top n; n <= 0 returns every object with a positive count.
func hotObjects(heat map[segment.ObjectID]int, n int) []segment.ObjectID {
	ids := make([]segment.ObjectID, 0, len(heat))
	for id, c := range heat {
		if c > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if heat[ids[i]] != heat[ids[j]] {
			return heat[ids[i]] > heat[ids[j]]
		}
		return ids[i].String() < ids[j].String()
	})
	if n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// NumDevices returns the fleet size.
func (p *Placement) NumDevices() int { return p.devices }

// Replication returns the policy the placement was built with.
func (p *Placement) Replication() Replication { return p.rep }

// ReplicatedObjects returns how many objects exist on more than one
// device.
func (p *Placement) ReplicatedObjects() int { return p.replicated }

// DevicesFor returns the devices holding the object, primary first. The
// slice is the placement's own — callers must not mutate it. Unknown
// objects return nil.
func (p *Placement) DevicesFor(id segment.ObjectID) []int { return p.replicas[id] }

// PrimaryFor returns the object's primary device.
func (p *Placement) PrimaryFor(id segment.ObjectID) (int, error) {
	devs := p.replicas[id]
	if len(devs) == 0 {
		return 0, fmt.Errorf("layout: object %v not placed on any device", id)
	}
	return devs[0], nil
}

// DeviceAssignment returns device d's filtered view of the cluster
// assignment: only the objects stored there, with their global group
// ids. A device id outside [0, NumDevices()) is a *GroupRangeError.
func (p *Placement) DeviceAssignment(d int) (*Assignment, error) {
	if d < 0 || d >= p.devices {
		return nil, &GroupRangeError{Op: "DeviceAssignment", Group: d, NumGroups: p.devices}
	}
	return p.perDevice[d], nil
}
