package layout

import (
	"errors"
	"testing"

	"repro/internal/segment"
)

func TestParseReplication(t *testing.T) {
	cases := []struct {
		in   string
		want Replication
		ok   bool
	}{
		{"", Replication{}, true},
		{"none", Replication{}, true},
		{"full", Replication{Kind: ReplicateFull}, true},
		{"hot", Replication{Kind: ReplicateHot}, true},
		{"hot:3", Replication{Kind: ReplicateHot, Hot: 3}, true},
		{"hot:0", Replication{}, false},
		{"hot:x", Replication{}, false},
		{"mirrored", Replication{}, false},
	}
	for _, c := range cases {
		got, err := ParseReplication(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Fatalf("ParseReplication(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
		if c.ok {
			back, err := ParseReplication(got.String())
			if err != nil || back != got {
				t.Fatalf("round trip %q -> %q: %v, %v", c.in, got.String(), back, err)
			}
		}
	}
}

func TestPlacementPrimaries(t *testing.T) {
	tens := []TenantObjects{tenant(0, 4), tenant(1, 4)}
	a := mustAssign(t, RoundRobinObjects{NumGroups: 4}, tens)
	p, err := BuildPlacement(a, 2, Replication{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 2 || p.ReplicatedObjects() != 0 {
		t.Fatalf("devices %d replicated %d", p.NumDevices(), p.ReplicatedObjects())
	}
	// Primary device = group % devices; every object on exactly one device.
	perDev := make([]int, 2)
	a.Each(func(id segment.ObjectID, g int) {
		devs := p.DevicesFor(id)
		if len(devs) != 1 || devs[0] != g%2 {
			t.Fatalf("object %v group %d on devices %v", id, g, devs)
		}
		perDev[devs[0]]++
	})
	if perDev[0] == 0 || perDev[1] == 0 {
		t.Fatalf("uneven placement %v: a multi-group layout must use both devices", perDev)
	}
	// Device assignments are filtered views with global group ids.
	for d := 0; d < 2; d++ {
		da, err := p.DeviceAssignment(d)
		if err != nil {
			t.Fatal(err)
		}
		if da.NumGroups() != a.NumGroups() {
			t.Fatalf("device %d has %d groups, want %d", d, da.NumGroups(), a.NumGroups())
		}
		if da.NumObjects() != perDev[d] {
			t.Fatalf("device %d holds %d objects, want %d", d, da.NumObjects(), perDev[d])
		}
		da.Each(func(id segment.ObjectID, g int) {
			global, err := a.GroupOf(id)
			if err != nil || g != global {
				t.Fatalf("device %d sees %v in group %d, global %d (%v)", d, id, g, global, err)
			}
		})
	}
}

func TestPlacementFullReplication(t *testing.T) {
	tens := []TenantObjects{tenant(0, 6)}
	a := mustAssign(t, RoundRobinObjects{NumGroups: 3}, tens)
	p, err := BuildPlacement(a, 3, Replication{Kind: ReplicateFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReplicatedObjects() != 6 {
		t.Fatalf("replicated %d, want 6", p.ReplicatedObjects())
	}
	a.Each(func(id segment.ObjectID, g int) {
		devs := p.DevicesFor(id)
		if len(devs) != 3 || devs[0] != g%3 {
			t.Fatalf("object %v on devices %v (group %d)", id, devs, g)
		}
	})
}

func TestPlacementHotReplication(t *testing.T) {
	tens := []TenantObjects{tenant(0, 6)}
	a := mustAssign(t, RoundRobinObjects{NumGroups: 2}, tens)
	heat := map[segment.ObjectID]int{
		tens[0].Objects[0]: 5,
		tens[0].Objects[1]: 3,
		tens[0].Objects[2]: 0, // cold: never replicated, even by hot:N
	}
	p, err := BuildPlacement(a, 2, Replication{Kind: ReplicateHot, Hot: 1}, heat)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReplicatedObjects() != 1 {
		t.Fatalf("replicated %d, want 1 (hot:1)", p.ReplicatedObjects())
	}
	devs := p.DevicesFor(tens[0].Objects[0])
	if len(devs) != 2 {
		t.Fatalf("hottest object on devices %v, want both", devs)
	}
	if pd, _ := p.PrimaryFor(tens[0].Objects[0]); pd != devs[0] {
		t.Fatalf("primary %d != devs[0] %d", pd, devs[0])
	}
	// Hot <= 0 replicates the whole positive-heat working set.
	p2, err := BuildPlacement(a, 2, Replication{Kind: ReplicateHot}, heat)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ReplicatedObjects() != 2 {
		t.Fatalf("replicated %d, want 2 (all hot)", p2.ReplicatedObjects())
	}
}

func TestPlacementSingleDeviceReplicationIsNoop(t *testing.T) {
	a := mustAssign(t, RoundRobinObjects{NumGroups: 4}, []TenantObjects{tenant(0, 4)})
	p, err := BuildPlacement(a, 1, Replication{Kind: ReplicateFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReplicatedObjects() != 0 {
		t.Fatalf("one device cannot replicate, got %d", p.ReplicatedObjects())
	}
	a.Each(func(id segment.ObjectID, _ int) {
		if devs := p.DevicesFor(id); len(devs) != 1 || devs[0] != 0 {
			t.Fatalf("object %v on devices %v", id, devs)
		}
	})
}

func TestBuildPlacementValidation(t *testing.T) {
	a := mustAssign(t, AllInOne{}, []TenantObjects{tenant(0, 1)})
	var pe *PolicyError
	if _, err := BuildPlacement(a, 0, Replication{}, nil); !errors.As(err, &pe) {
		t.Fatalf("zero devices accepted: %v", err)
	}
	var re *GroupRangeError
	p, err := BuildPlacement(a, 1, Replication{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeviceAssignment(1); !errors.As(err, &re) {
		t.Fatalf("out-of-range device accepted: %v", err)
	}
	if _, err := p.PrimaryFor(segment.ObjectID{Table: "missing"}); err == nil {
		t.Fatal("unplaced object primary lookup succeeded")
	}
}
