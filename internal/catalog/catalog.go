// Package catalog holds per-tenant table metadata: schemas and the list of
// CSD objects backing each relation. In the paper's architecture only the
// catalog lives on the database VM's local disk; all binary data is fetched
// from the cold storage device at execution time. The catalog is what lets
// the MJoin state manager enumerate upfront every object a query needs.
package catalog

import (
	"fmt"
	"sort"

	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// TableMeta describes one relation of one tenant.
type TableMeta struct {
	// Name is the relation name, unique within the tenant.
	Name string
	// Schema describes the relation's columns.
	Schema *tuple.Schema
	// Objects lists the backing CSD objects in segment order.
	Objects []segment.ObjectID
	// RowCount is the total tuple count across segments.
	RowCount int64
	// Stats holds the per-segment zone maps and Bloom filters, aligned
	// with Objects (Stats.Segments[i] describes Objects[i]). They are
	// computed at registration time and, like the rest of the catalog,
	// live with the database VM — never on the CSD — so predicates can
	// prune segment requests before any GET is issued.
	Stats *stats.Table
}

// Catalog maps table names to metadata for a single tenant.
type Catalog struct {
	Tenant int
	tables map[string]*TableMeta
	order  []string
}

// New returns an empty catalog for the given tenant.
func New(tenant int) *Catalog {
	return &Catalog{Tenant: tenant, tables: make(map[string]*TableMeta)}
}

// AddTable registers a relation from its segments, computing its
// per-segment statistics (zone maps + Bloom filters) as part of the
// catalog metadata. The segments must all belong to this catalog's
// tenant and share the table name. Lazily decoded v2 segments register
// without any row materialization: row counts and zone maps come from
// the column directories (see stats.CollectChecked).
func (c *Catalog) AddTable(name string, schema *tuple.Schema, segs []*segment.Segment) (*TableMeta, error) {
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already registered", name)
	}
	tm := &TableMeta{Name: name, Schema: schema}
	ordered := append([]*segment.Segment(nil), segs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID.Index < ordered[j].ID.Index })
	for _, sg := range ordered {
		if sg.ID.Tenant != c.Tenant {
			return nil, fmt.Errorf("catalog: segment %v belongs to tenant %d, catalog is tenant %d", sg.ID, sg.ID.Tenant, c.Tenant)
		}
		if sg.ID.Table != name {
			return nil, fmt.Errorf("catalog: segment %v registered under table %q", sg.ID, name)
		}
		tm.Objects = append(tm.Objects, sg.ID)
		tm.RowCount += int64(sg.NumRows())
	}
	st, err := stats.CollectChecked(name, schema, ordered, stats.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("catalog: table %q: %w", name, err)
	}
	tm.Stats = st
	c.tables[name] = tm
	c.order = append(c.order, name)
	return tm, nil
}

// MustAddTable is AddTable that panics on error, for use in generators.
func (c *Catalog) MustAddTable(name string, schema *tuple.Schema, segs []*segment.Segment) *TableMeta {
	tm, err := c.AddTable(name, schema, segs)
	if err != nil {
		panic(err)
	}
	return tm
}

// Table returns metadata for the named relation.
func (c *Catalog) Table(name string) (*TableMeta, error) {
	tm, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return tm, nil
}

// MustTable is Table that panics on error.
func (c *Catalog) MustTable(name string) *TableMeta {
	tm, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return tm
}

// TableNames lists registered tables in registration order.
func (c *Catalog) TableNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// AllObjects returns every object across all tables, in registration then
// segment order. This is the tenant's full dataset footprint on the CSD.
func (c *Catalog) AllObjects() []segment.ObjectID {
	var out []segment.ObjectID
	for _, name := range c.order {
		out = append(out, c.tables[name].Objects...)
	}
	return out
}

// ObjectsFor returns the objects needed to evaluate a query over the named
// tables, mirroring the MJoin state manager's "readObjectsFromCatalog".
func (c *Catalog) ObjectsFor(tables ...string) ([]segment.ObjectID, error) {
	var out []segment.ObjectID
	for _, name := range tables {
		tm, err := c.Table(name)
		if err != nil {
			return nil, err
		}
		out = append(out, tm.Objects...)
	}
	return out, nil
}
