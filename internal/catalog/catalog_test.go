package catalog

import (
	"reflect"
	"testing"

	"repro/internal/segment"
	"repro/internal/tuple"
)

var sch = tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})

func mkSegs(tenant int, table string, n, rowsEach int) []*segment.Segment {
	var rows []tuple.Row
	for i := 0; i < n*rowsEach; i++ {
		rows = append(rows, tuple.Row{tuple.Int(int64(i))})
	}
	return segment.Split(tenant, table, rows, rowsEach, 1<<30)
}

func TestAddAndLookup(t *testing.T) {
	c := New(1)
	tm := c.MustAddTable("orders", sch, mkSegs(1, "orders", 3, 10))
	if tm.RowCount != 30 {
		t.Fatalf("rowcount %d", tm.RowCount)
	}
	if len(tm.Objects) != 3 {
		t.Fatalf("objects %v", tm.Objects)
	}
	got := c.MustTable("orders")
	if got != tm {
		t.Fatal("lookup returned different meta")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	c := New(0)
	c.MustAddTable("t", sch, mkSegs(0, "t", 1, 1))
	if _, err := c.AddTable("t", sch, mkSegs(0, "t", 1, 1)); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTenantMismatchRejected(t *testing.T) {
	c := New(1)
	if _, err := c.AddTable("t", sch, mkSegs(2, "t", 1, 1)); err == nil {
		t.Fatal("wrong-tenant segment accepted")
	}
}

func TestTableNameMismatchRejected(t *testing.T) {
	c := New(0)
	if _, err := c.AddTable("a", sch, mkSegs(0, "b", 1, 1)); err == nil {
		t.Fatal("wrong-table segment accepted")
	}
}

func TestObjectsFor(t *testing.T) {
	c := New(0)
	c.MustAddTable("a", sch, mkSegs(0, "a", 2, 5))
	c.MustAddTable("b", sch, mkSegs(0, "b", 3, 5))
	objs, err := c.ObjectsFor("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 {
		t.Fatalf("got %d objects", len(objs))
	}
	if _, err := c.ObjectsFor("a", "zz"); err == nil {
		t.Fatal("unknown table in ObjectsFor accepted")
	}
	all := c.AllObjects()
	if !reflect.DeepEqual(objs, all) {
		t.Fatalf("ObjectsFor(a,b) != AllObjects: %v vs %v", objs, all)
	}
}

func TestTableNamesOrder(t *testing.T) {
	c := New(0)
	c.MustAddTable("z", sch, mkSegs(0, "z", 1, 1))
	c.MustAddTable("a", sch, mkSegs(0, "a", 1, 1))
	if got := c.TableNames(); !reflect.DeepEqual(got, []string{"z", "a"}) {
		t.Fatalf("names %v", got)
	}
}
