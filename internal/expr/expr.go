// Package expr provides typed expression trees evaluated against rows.
// Predicates and projections in both query engines are expr.Expr values
// bound to a schema at plan-build time, so evaluation is index-based and
// allocation-free for the common cases.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/tuple"
)

// Expr is an expression evaluated against a row.
type Expr interface {
	// Eval computes the expression over row.
	Eval(row tuple.Row) (tuple.Value, error)
	// String renders the expression for plan display.
	String() string
}

// Col references a column by position. Build one with NewCol or Bind.
type Col struct {
	Idx  int
	Name string
}

// NewCol returns a column reference bound to position idx.
func NewCol(idx int, name string) Col { return Col{Idx: idx, Name: name} }

// Bind resolves a column name against a schema.
func Bind(s *tuple.Schema, name string) Col {
	return Col{Idx: s.MustColIndex(name), Name: name}
}

func (c Col) Eval(row tuple.Row) (tuple.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return tuple.Value{}, fmt.Errorf("expr: column %q index %d out of range (row arity %d)", c.Name, c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c Col) String() string { return c.Name }

// Const is a literal value.
type Const struct{ V tuple.Value }

// Lit returns a literal expression.
func Lit(v tuple.Value) Const { return Const{V: v} }

func (c Const) Eval(tuple.Row) (tuple.Value, error) { return c.V, nil }
func (c Const) String() string                      { return c.V.String() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c Cmp) Eval(row tuple.Row) (tuple.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	rel := tuple.Compare(l, r)
	var out bool
	switch c.Op {
	case EQ:
		out = rel == 0
	case NE:
		out = rel != 0
	case LT:
		out = rel < 0
	case LE:
		out = rel <= 0
	case GT:
		out = rel > 0
	case GE:
		out = rel >= 0
	}
	return tuple.Bool(out), nil
}

func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith applies an arithmetic operator. Integer operands yield int64
// results (except Div, which always yields float64); any float operand
// promotes the result to float64.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) Eval(row tuple.Row) (tuple.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	if l.K == tuple.KindString || r.K == tuple.KindString {
		return tuple.Value{}, fmt.Errorf("expr: arithmetic on string operand in %s", a)
	}
	if a.Op == Div {
		d := r.AsFloat()
		if d == 0 {
			return tuple.Value{}, fmt.Errorf("expr: division by zero in %s", a)
		}
		return tuple.Float(l.AsFloat() / d), nil
	}
	if l.K == tuple.KindFloat64 || r.K == tuple.KindFloat64 {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch a.Op {
		case Add:
			return tuple.Float(lf + rf), nil
		case Sub:
			return tuple.Float(lf - rf), nil
		default:
			return tuple.Float(lf * rf), nil
		}
	}
	li, ri := l.AsInt(), r.AsInt()
	switch a.Op {
	case Add:
		return tuple.Int(li + ri), nil
	case Sub:
		return tuple.Int(li - ri), nil
	default:
		return tuple.Int(li * ri), nil
	}
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// And is an n-ary conjunction.
type And struct{ Terms []Expr }

// NewAnd builds a conjunction; with zero terms it is constant true.
func NewAnd(terms ...Expr) And { return And{Terms: terms} }

func (a And) Eval(row tuple.Row) (tuple.Value, error) {
	for _, t := range a.Terms {
		v, err := t.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if v.K != tuple.KindBool {
			return tuple.Value{}, fmt.Errorf("expr: AND term %s is not boolean", t)
		}
		if !v.AsBool() {
			return tuple.Bool(false), nil
		}
	}
	return tuple.Bool(true), nil
}

func (a And) String() string { return joinTerms(a.Terms, " AND ") }

// Or is an n-ary disjunction.
type Or struct{ Terms []Expr }

// NewOr builds a disjunction; with zero terms it is constant false.
func NewOr(terms ...Expr) Or { return Or{Terms: terms} }

func (o Or) Eval(row tuple.Row) (tuple.Value, error) {
	for _, t := range o.Terms {
		v, err := t.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if v.K != tuple.KindBool {
			return tuple.Value{}, fmt.Errorf("expr: OR term %s is not boolean", t)
		}
		if v.AsBool() {
			return tuple.Bool(true), nil
		}
	}
	return tuple.Bool(false), nil
}

func (o Or) String() string { return joinTerms(o.Terms, " OR ") }

func joinTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Not negates a boolean sub-expression.
type Not struct{ E Expr }

func (n Not) Eval(row tuple.Row) (tuple.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	if v.K != tuple.KindBool {
		return tuple.Value{}, fmt.Errorf("expr: NOT of non-boolean %s", n.E)
	}
	return tuple.Bool(!v.AsBool()), nil
}

func (n Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// In tests membership of the needle in a fixed literal set.
type In struct {
	Needle Expr
	Set    []tuple.Value
}

func (in In) Eval(row tuple.Row) (tuple.Value, error) {
	v, err := in.Needle.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	for _, m := range in.Set {
		if m.K == v.K && tuple.Equal(v, m) {
			return tuple.Bool(true), nil
		}
	}
	return tuple.Bool(false), nil
}

func (in In) String() string {
	parts := make([]string, len(in.Set))
	for i, v := range in.Set {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", in.Needle, strings.Join(parts, ", "))
}

// Between tests Lo <= E <= Hi (inclusive on both ends, as in SQL).
type Between struct {
	E      Expr
	Lo, Hi tuple.Value
}

func (b Between) Eval(row tuple.Row) (tuple.Value, error) {
	v, err := b.E.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	return tuple.Bool(tuple.Compare(v, b.Lo) >= 0 && tuple.Compare(v, b.Hi) <= 0), nil
}

func (b Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.E, b.Lo, b.Hi)
}

// Case is a searched CASE expression: the first branch whose condition is
// true yields the result; otherwise Else (which must be non-nil).
type Case struct {
	Branches []CaseBranch
	Else     Expr
}

// CaseBranch is one WHEN/THEN arm.
type CaseBranch struct {
	When Expr
	Then Expr
}

func (c Case) Eval(row tuple.Row) (tuple.Value, error) {
	for _, b := range c.Branches {
		cond, err := b.When.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if cond.K != tuple.KindBool {
			return tuple.Value{}, fmt.Errorf("expr: CASE condition %s is not boolean", b.When)
		}
		if cond.AsBool() {
			return b.Then.Eval(row)
		}
	}
	if c.Else == nil {
		return tuple.Value{}, fmt.Errorf("expr: CASE fell through with no ELSE")
	}
	return c.Else.Eval(row)
}

func (c Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, b := range c.Branches {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", b.When, b.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Prefix tests whether a string expression starts with a literal prefix
// (the common LIKE 'x%' pattern in the benchmark queries).
type Prefix struct {
	E      Expr
	Prefix string
}

func (p Prefix) Eval(row tuple.Row) (tuple.Value, error) {
	v, err := p.E.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	if v.K != tuple.KindString {
		return tuple.Value{}, fmt.Errorf("expr: PREFIX of non-string %s", p.E)
	}
	return tuple.Bool(strings.HasPrefix(v.AsString(), p.Prefix)), nil
}

func (p Prefix) String() string { return fmt.Sprintf("%s LIKE '%s%%'", p.E, p.Prefix) }

// EvalBool evaluates e and asserts a boolean result.
func EvalBool(e Expr, row tuple.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.K != tuple.KindBool {
		return false, fmt.Errorf("expr: predicate %s returned %v, want bool", e, v.K)
	}
	return v.AsBool(), nil
}

// True is a predicate that always holds.
var True Expr = Const{V: tuple.Bool(true)}

// Convenience constructors used heavily by the workload query plans.

// ColEq builds schema-bound "col = lit".
func ColEq(s *tuple.Schema, col string, v tuple.Value) Expr {
	return Cmp{Op: EQ, L: Bind(s, col), R: Lit(v)}
}

// ColBetween builds schema-bound "col BETWEEN lo AND hi".
func ColBetween(s *tuple.Schema, col string, lo, hi tuple.Value) Expr {
	return Between{E: Bind(s, col), Lo: lo, Hi: hi}
}

// ColLT builds schema-bound "col < lit".
func ColLT(s *tuple.Schema, col string, v tuple.Value) Expr {
	return Cmp{Op: LT, L: Bind(s, col), R: Lit(v)}
}

// ColGE builds schema-bound "col >= lit".
func ColGE(s *tuple.Schema, col string, v tuple.Value) Expr {
	return Cmp{Op: GE, L: Bind(s, col), R: Lit(v)}
}
