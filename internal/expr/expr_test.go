package expr

import (
	"strings"
	"testing"

	"repro/internal/tuple"
)

var testSchema = tuple.NewSchema(
	tuple.Column{Name: "id", Kind: tuple.KindInt64},
	tuple.Column{Name: "price", Kind: tuple.KindFloat64},
	tuple.Column{Name: "name", Kind: tuple.KindString},
	tuple.Column{Name: "ship", Kind: tuple.KindDate},
)

var testRow = tuple.Row{
	tuple.Int(7),
	tuple.Float(19.5),
	tuple.Str("widget"),
	tuple.Date(1994, 6, 1),
}

func mustEval(t *testing.T, e Expr) tuple.Value {
	t.Helper()
	v, err := e.Eval(testRow)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestColAndConst(t *testing.T) {
	if v := mustEval(t, Bind(testSchema, "id")); v.AsInt() != 7 {
		t.Errorf("col id = %v", v)
	}
	if v := mustEval(t, Lit(tuple.Str("x"))); v.AsString() != "x" {
		t.Errorf("const = %v", v)
	}
	if _, err := (Col{Idx: 99, Name: "bogus"}).Eval(testRow); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r tuple.Value
		want bool
	}{
		{EQ, tuple.Int(1), tuple.Int(1), true},
		{EQ, tuple.Int(1), tuple.Int(2), false},
		{NE, tuple.Int(1), tuple.Int(2), true},
		{LT, tuple.Int(1), tuple.Int(2), true},
		{LE, tuple.Int(2), tuple.Int(2), true},
		{GT, tuple.Int(3), tuple.Int(2), true},
		{GE, tuple.Int(1), tuple.Int(2), false},
		{LT, tuple.Str("apple"), tuple.Str("banana"), true},
	}
	for _, c := range cases {
		e := Cmp{Op: c.op, L: Lit(c.l), R: Lit(c.r)}
		if v := mustEval(t, e); v.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", e, v, c.want)
		}
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		l, r tuple.Value
		want tuple.Value
	}{
		{Add, tuple.Int(2), tuple.Int(3), tuple.Int(5)},
		{Sub, tuple.Int(2), tuple.Int(3), tuple.Int(-1)},
		{Mul, tuple.Int(4), tuple.Int(3), tuple.Int(12)},
		{Add, tuple.Float(1.5), tuple.Int(1), tuple.Float(2.5)},
		{Mul, tuple.Float(2), tuple.Float(3), tuple.Float(6)},
		{Div, tuple.Int(7), tuple.Int(2), tuple.Float(3.5)},
	}
	for _, c := range cases {
		e := Arith{Op: c.op, L: Lit(c.l), R: Lit(c.r)}
		v := mustEval(t, e)
		if v.K != c.want.K || v.AsFloat() != c.want.AsFloat() {
			t.Errorf("%s = %v, want %v", e, v, c.want)
		}
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := (Arith{Op: Div, L: Lit(tuple.Int(1)), R: Lit(tuple.Int(0))}).Eval(testRow); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := (Arith{Op: Add, L: Lit(tuple.Str("a")), R: Lit(tuple.Int(1))}).Eval(testRow); err == nil {
		t.Error("string arithmetic accepted")
	}
}

func TestBooleanOps(t *testing.T) {
	tr, fa := Lit(tuple.Bool(true)), Lit(tuple.Bool(false))
	if v := mustEval(t, NewAnd(tr, tr)); !v.AsBool() {
		t.Error("true AND true")
	}
	if v := mustEval(t, NewAnd(tr, fa)); v.AsBool() {
		t.Error("true AND false")
	}
	if v := mustEval(t, NewAnd()); !v.AsBool() {
		t.Error("empty AND should be true")
	}
	if v := mustEval(t, NewOr(fa, tr)); !v.AsBool() {
		t.Error("false OR true")
	}
	if v := mustEval(t, NewOr()); v.AsBool() {
		t.Error("empty OR should be false")
	}
	if v := mustEval(t, Not{E: fa}); !v.AsBool() {
		t.Error("NOT false")
	}
	if _, err := (Not{E: Lit(tuple.Int(1))}).Eval(testRow); err == nil {
		t.Error("NOT of int accepted")
	}
}

func TestShortCircuit(t *testing.T) {
	// The second AND term would error (string arithmetic); short-circuit
	// must prevent its evaluation.
	bad := Cmp{Op: EQ, L: Arith{Op: Add, L: Lit(tuple.Str("a")), R: Lit(tuple.Int(1))}, R: Lit(tuple.Int(0))}
	e := NewAnd(Lit(tuple.Bool(false)), bad)
	if v := mustEval(t, e); v.AsBool() {
		t.Error("short-circuit AND wrong result")
	}
	o := NewOr(Lit(tuple.Bool(true)), bad)
	if v := mustEval(t, o); !v.AsBool() {
		t.Error("short-circuit OR wrong result")
	}
}

func TestInAndBetween(t *testing.T) {
	in := In{Needle: Bind(testSchema, "name"), Set: []tuple.Value{tuple.Str("gear"), tuple.Str("widget")}}
	if v := mustEval(t, in); !v.AsBool() {
		t.Error("IN missed member")
	}
	in2 := In{Needle: Bind(testSchema, "name"), Set: []tuple.Value{tuple.Str("gear")}}
	if v := mustEval(t, in2); v.AsBool() {
		t.Error("IN matched non-member")
	}
	bt := ColBetween(testSchema, "ship", tuple.Date(1994, 1, 1), tuple.Date(1994, 12, 31))
	if v := mustEval(t, bt); !v.AsBool() {
		t.Error("BETWEEN missed in-range date")
	}
	bt2 := ColBetween(testSchema, "ship", tuple.Date(1995, 1, 1), tuple.Date(1995, 12, 31))
	if v := mustEval(t, bt2); v.AsBool() {
		t.Error("BETWEEN matched out-of-range date")
	}
	// Boundary inclusivity.
	bt3 := ColBetween(testSchema, "ship", tuple.Date(1994, 6, 1), tuple.Date(1994, 6, 1))
	if v := mustEval(t, bt3); !v.AsBool() {
		t.Error("BETWEEN should include boundaries")
	}
}

func TestCase(t *testing.T) {
	e := Case{
		Branches: []CaseBranch{
			{When: ColEq(testSchema, "name", tuple.Str("widget")), Then: Lit(tuple.Int(1))},
		},
		Else: Lit(tuple.Int(0)),
	}
	if v := mustEval(t, e); v.AsInt() != 1 {
		t.Errorf("case = %v", v)
	}
	e2 := Case{
		Branches: []CaseBranch{
			{When: ColEq(testSchema, "name", tuple.Str("gear")), Then: Lit(tuple.Int(1))},
		},
		Else: Lit(tuple.Int(0)),
	}
	if v := mustEval(t, e2); v.AsInt() != 0 {
		t.Errorf("case else = %v", v)
	}
	e3 := Case{Branches: []CaseBranch{{When: Lit(tuple.Bool(false)), Then: Lit(tuple.Int(1))}}}
	if _, err := e3.Eval(testRow); err == nil {
		t.Error("CASE without ELSE fell through silently")
	}
}

func TestPrefix(t *testing.T) {
	if v := mustEval(t, Prefix{E: Bind(testSchema, "name"), Prefix: "wid"}); !v.AsBool() {
		t.Error("prefix missed")
	}
	if v := mustEval(t, Prefix{E: Bind(testSchema, "name"), Prefix: "zz"}); v.AsBool() {
		t.Error("prefix false positive")
	}
	if _, err := (Prefix{E: Bind(testSchema, "id"), Prefix: "x"}).Eval(testRow); err == nil {
		t.Error("prefix of int accepted")
	}
}

func TestEvalBool(t *testing.T) {
	ok, err := EvalBool(ColGE(testSchema, "id", tuple.Int(5)), testRow)
	if err != nil || !ok {
		t.Fatalf("EvalBool: %v %v", ok, err)
	}
	if _, err := EvalBool(Lit(tuple.Int(1)), testRow); err == nil {
		t.Error("non-boolean predicate accepted")
	}
}

func TestAllNodeStringsRender(t *testing.T) {
	id := Bind(testSchema, "id")
	name := Bind(testSchema, "name")
	nodes := []Expr{
		id,
		Lit(tuple.Float(1.5)),
		Cmp{Op: NE, L: id, R: Lit(tuple.Int(0))},
		Arith{Op: Div, L: id, R: Lit(tuple.Int(2))},
		NewAnd(Lit(tuple.Bool(true))),
		NewOr(Lit(tuple.Bool(false))),
		Not{E: Lit(tuple.Bool(true))},
		In{Needle: name, Set: []tuple.Value{tuple.Str("a"), tuple.Str("b")}},
		Between{E: id, Lo: tuple.Int(1), Hi: tuple.Int(5)},
		Case{Branches: []CaseBranch{{When: Lit(tuple.Bool(true)), Then: Lit(tuple.Int(1))}}, Else: Lit(tuple.Int(0))},
		Prefix{E: name, Prefix: "wi"},
		True,
	}
	for _, n := range nodes {
		if s := n.String(); s == "" {
			t.Errorf("%T renders empty", n)
		}
	}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.String() == "" {
			t.Errorf("cmp op %d empty", op)
		}
	}
	for _, op := range []ArithOp{Add, Sub, Mul, Div} {
		if op.String() == "" {
			t.Errorf("arith op %d empty", op)
		}
	}
}

func TestErrorPropagationThroughCompounds(t *testing.T) {
	bad := Col{Idx: 99, Name: "bogus"}
	pred := Cmp{Op: EQ, L: bad, R: Lit(tuple.Int(1))}
	cases := []Expr{
		Cmp{Op: EQ, L: bad, R: Lit(tuple.Int(1))},
		Cmp{Op: EQ, L: Lit(tuple.Int(1)), R: bad},
		Arith{Op: Add, L: bad, R: Lit(tuple.Int(1))},
		Arith{Op: Add, L: Lit(tuple.Int(1)), R: bad},
		NewAnd(pred),
		NewOr(pred),
		Not{E: pred},
		In{Needle: bad, Set: []tuple.Value{tuple.Int(1)}},
		Between{E: bad, Lo: tuple.Int(1), Hi: tuple.Int(2)},
		Case{Branches: []CaseBranch{{When: pred, Then: Lit(tuple.Int(1))}}, Else: Lit(tuple.Int(0))},
		Case{Branches: []CaseBranch{{When: Lit(tuple.Bool(true)), Then: bad}}, Else: Lit(tuple.Int(0))},
		Case{Branches: []CaseBranch{{When: Lit(tuple.Bool(false)), Then: Lit(tuple.Int(1))}}, Else: bad},
		Prefix{E: bad, Prefix: "x"},
	}
	for i, e := range cases {
		if _, err := e.Eval(testRow); err == nil {
			t.Errorf("case %d (%T) swallowed the error", i, e)
		}
	}
}

func TestNonBooleanConditions(t *testing.T) {
	intLit := Lit(tuple.Int(1))
	if _, err := NewAnd(intLit).Eval(testRow); err == nil {
		t.Error("AND over int accepted")
	}
	if _, err := NewOr(intLit).Eval(testRow); err == nil {
		t.Error("OR over int accepted")
	}
	c := Case{Branches: []CaseBranch{{When: intLit, Then: intLit}}, Else: intLit}
	if _, err := c.Eval(testRow); err == nil {
		t.Error("CASE with int condition accepted")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewAnd(
		ColGE(testSchema, "ship", tuple.Date(1994, 1, 1)),
		ColLT(testSchema, "price", tuple.Float(100)),
	)
	s := e.String()
	for _, want := range []string{"ship", ">=", "price", "<", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}
