// Package objstore implements the Swift-like object interface in front of
// the cold storage device: tenants store each relation in a container and
// each 1 GB segment as an object within it (§5.1 "each relation has a
// corresponding Swift container, and each segment is stored as an object
// within the container"). Objects are opaque byte blobs with FNV-64
// checksums; the dataset loader encodes segments through the binary row
// codec and the segment-store builder decodes them back, so the on-wire
// format is exercised on every load.
package objstore

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/catalog"
	"repro/internal/segment"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Meta describes one stored object.
type Meta struct {
	// Key is the object's name within its container.
	Key string
	// Size is the stored byte count.
	Size int64
	// ETag is the FNV-64a checksum of the contents, verified on Get.
	ETag uint64
}

// container holds one relation's objects.
type container struct {
	name    string
	objects map[string][]byte
	metas   map[string]Meta
}

// Store is an in-memory multi-container object store.
type Store struct {
	containers map[string]*container
}

// New returns an empty store.
func New() *Store {
	return &Store{containers: make(map[string]*container)}
}

// ContainerFor names the container holding an object id's relation.
func ContainerFor(id segment.ObjectID) string {
	return fmt.Sprintf("t%d.%s", id.Tenant, id.Table)
}

// KeyFor names the object within its container.
func KeyFor(id segment.ObjectID) string {
	return fmt.Sprintf("%06d", id.Index)
}

func etag(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Put stores data, creating the container if needed, and returns the
// object's metadata.
func (s *Store) Put(cont, key string, data []byte) Meta {
	c, ok := s.containers[cont]
	if !ok {
		c = &container{name: cont, objects: make(map[string][]byte), metas: make(map[string]Meta)}
		s.containers[cont] = c
	}
	cp := append([]byte(nil), data...)
	m := Meta{Key: key, Size: int64(len(cp)), ETag: etag(cp)}
	c.objects[key] = cp
	c.metas[key] = m
	return m
}

// Get retrieves an object, verifying its checksum.
func (s *Store) Get(cont, key string) ([]byte, Meta, error) {
	c, ok := s.containers[cont]
	if !ok {
		return nil, Meta{}, fmt.Errorf("objstore: container %q not found", cont)
	}
	data, ok := c.objects[key]
	if !ok {
		return nil, Meta{}, fmt.Errorf("objstore: object %s/%s not found", cont, key)
	}
	m := c.metas[key]
	if etag(data) != m.ETag {
		return nil, Meta{}, fmt.Errorf("objstore: object %s/%s failed checksum verification", cont, key)
	}
	return data, m, nil
}

// Delete removes an object.
func (s *Store) Delete(cont, key string) error {
	c, ok := s.containers[cont]
	if !ok {
		return fmt.Errorf("objstore: container %q not found", cont)
	}
	if _, ok := c.objects[key]; !ok {
		return fmt.Errorf("objstore: object %s/%s not found", cont, key)
	}
	delete(c.objects, key)
	delete(c.metas, key)
	return nil
}

// Containers lists container names, sorted.
func (s *Store) Containers() []string {
	out := make([]string, 0, len(s.containers))
	for name := range s.containers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns the metadata of a container's objects, sorted by key.
func (s *Store) List(cont string) ([]Meta, error) {
	c, ok := s.containers[cont]
	if !ok {
		return nil, fmt.Errorf("objstore: container %q not found", cont)
	}
	out := make([]Meta, 0, len(c.metas))
	for _, m := range c.metas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// TotalBytes sums stored object sizes.
func (s *Store) TotalBytes() int64 {
	var n int64
	for _, c := range s.containers {
		for _, m := range c.metas {
			n += m.Size
		}
	}
	return n
}

// LoadDataset encodes every segment of a tenant's dataset through the
// binary codec (FormatV1, the historical wire format) and PUTs it — the
// "data waterfall" into the cold storage tier.
func LoadDataset(s *Store, ds *workload.Dataset) error {
	return LoadDatasetFormat(s, ds, segment.FormatV1)
}

// LoadDatasetFormat is LoadDataset with the wire format made explicit:
// FormatV1 writes the row-major layout, FormatV2 the columnar layout with
// a column directory. Either format decodes back to identical rows; only
// access granularity and size differ.
func LoadDatasetFormat(s *Store, ds *workload.Dataset, f segment.Format) error {
	for _, name := range ds.Catalog.TableNames() {
		tm := ds.Catalog.MustTable(name)
		for _, id := range tm.Objects {
			sg, ok := ds.Store[id]
			if !ok {
				return fmt.Errorf("objstore: dataset missing segment %v", id)
			}
			data, err := sg.EncodeFormat(tm.Schema, f)
			if err != nil {
				return err
			}
			s.Put(ContainerFor(id), KeyFor(id), data)
		}
	}
	return nil
}

// BuildSegmentStore decodes every object of the given catalogs back into
// fully materialized segments, producing the map the CSD emulator serves
// from. Decoding verifies the wire format and checksums end to end.
func BuildSegmentStore(s *Store, catalogs ...*catalog.Catalog) (map[segment.ObjectID]*segment.Segment, error) {
	return buildSegmentStore(s, segment.Decode, catalogs)
}

// BuildSegmentStoreLazy is BuildSegmentStore without eager row
// materialization: the returned segments keep their encoded payloads and
// decode columns on demand, so scans pay (and measure) decode work per
// access, and v2 readers decode only the column blocks a query projects.
func BuildSegmentStoreLazy(s *Store, catalogs ...*catalog.Catalog) (map[segment.ObjectID]*segment.Segment, error) {
	return buildSegmentStore(s, segment.DecodeLazy, catalogs)
}

func buildSegmentStore(s *Store, decode func(*tuple.Schema, []byte) (*segment.Segment, error), catalogs []*catalog.Catalog) (map[segment.ObjectID]*segment.Segment, error) {
	out := make(map[segment.ObjectID]*segment.Segment)
	for _, cat := range catalogs {
		for _, name := range cat.TableNames() {
			tm := cat.MustTable(name)
			for _, id := range tm.Objects {
				data, _, err := s.Get(ContainerFor(id), KeyFor(id))
				if err != nil {
					return nil, err
				}
				sg, err := decode(tm.Schema, data)
				if err != nil {
					return nil, fmt.Errorf("objstore: decode %v: %w", id, err)
				}
				if sg.ID != id {
					return nil, fmt.Errorf("objstore: object %v decoded with id %v", id, sg.ID)
				}
				out[id] = sg
			}
		}
	}
	return out, nil
}

// ReencodeDataset pushes a generated dataset through the object store in
// the given wire format and returns a dataset whose store serves lazily
// decoded segments and whose catalog was rebuilt from them — so its
// statistics come from the v2 column directories when f is FormatV2, and
// every scan against the returned store performs real, per-access decode
// work. FormatMem returns the dataset unchanged (in-memory segments,
// zero decode cost — the historical behaviour).
func ReencodeDataset(ds *workload.Dataset, f segment.Format) (*workload.Dataset, error) {
	if f == segment.FormatMem {
		return ds, nil
	}
	s := New()
	if err := LoadDatasetFormat(s, ds, f); err != nil {
		return nil, err
	}
	store, err := BuildSegmentStoreLazy(s, ds.Catalog)
	if err != nil {
		return nil, err
	}
	cat := catalog.New(ds.Catalog.Tenant)
	for _, name := range ds.Catalog.TableNames() {
		tm := ds.Catalog.MustTable(name)
		segs := make([]*segment.Segment, 0, len(tm.Objects))
		for _, id := range tm.Objects {
			segs = append(segs, store[id])
		}
		if _, err := cat.AddTable(name, tm.Schema, segs); err != nil {
			return nil, err
		}
	}
	return &workload.Dataset{Catalog: cat, Store: store}, nil
}
