package objstore

import (
	"reflect"
	"testing"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	m := s.Put("c1", "k1", []byte("hello"))
	if m.Size != 5 || m.Key != "k1" {
		t.Fatalf("meta %+v", m)
	}
	data, m2, err := s.Get("c1", "k1")
	if err != nil || string(data) != "hello" || m2.ETag != m.ETag {
		t.Fatalf("get: %q %+v %v", data, m2, err)
	}
	if err := s.Delete("c1", "k1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("c1", "k1"); err == nil {
		t.Fatal("deleted object retrievable")
	}
	if err := s.Delete("c1", "k1"); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := s.Delete("nope", "k"); err == nil {
		t.Fatal("delete from missing container accepted")
	}
}

func TestGetErrors(t *testing.T) {
	s := New()
	if _, _, err := s.Get("missing", "k"); err == nil {
		t.Fatal("missing container accepted")
	}
	s.Put("c", "a", []byte("x"))
	if _, _, err := s.Get("c", "missing"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestPutIsolation(t *testing.T) {
	s := New()
	buf := []byte("mutable")
	s.Put("c", "k", buf)
	buf[0] = 'X'
	data, _, err := s.Get("c", "k")
	if err != nil || string(data) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", data)
	}
}

func TestListAndContainers(t *testing.T) {
	s := New()
	s.Put("b", "2", []byte("y"))
	s.Put("b", "1", []byte("x"))
	s.Put("a", "1", []byte("z"))
	if got := s.Containers(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("containers %v", got)
	}
	metas, err := s.List("b")
	if err != nil || len(metas) != 2 || metas[0].Key != "1" {
		t.Fatalf("list %v %v", metas, err)
	}
	if _, err := s.List("zzz"); err == nil {
		t.Fatal("list of missing container accepted")
	}
	if s.TotalBytes() != 3 {
		t.Fatalf("total %d", s.TotalBytes())
	}
}

func TestOverwriteReplaces(t *testing.T) {
	s := New()
	s.Put("c", "k", []byte("one"))
	m := s.Put("c", "k", []byte("twoo"))
	data, m2, err := s.Get("c", "k")
	if err != nil || string(data) != "twoo" || m2.ETag != m.ETag {
		t.Fatalf("overwrite: %q", data)
	}
	if s.TotalBytes() != 4 {
		t.Fatalf("total %d", s.TotalBytes())
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := workload.TPCH(3, workload.TPCHConfig{SF: 4, RowsPerObject: 12, Seed: 9})
	s := New()
	if err := LoadDataset(s, ds); err != nil {
		t.Fatal(err)
	}
	if len(s.Containers()) != len(ds.Catalog.TableNames()) {
		t.Fatalf("containers %v", s.Containers())
	}
	back, err := BuildSegmentStore(s, ds.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.Store) {
		t.Fatalf("segments %d != %d", len(back), len(ds.Store))
	}
	for id, sg := range ds.Store {
		got := back[id]
		if got == nil {
			t.Fatalf("missing %v", id)
		}
		if got.NominalBytes != sg.NominalBytes || len(got.Rows) != len(sg.Rows) {
			t.Fatalf("segment %v mismatch", id)
		}
		for i := range sg.Rows {
			if !reflect.DeepEqual(sg.Rows[i], got.Rows[i]) {
				t.Fatalf("row %d of %v differs", i, id)
			}
		}
	}
}

// TestClusterOverObjstore runs a full query through data that was loaded
// into the object store and decoded back — the complete storage path.
func TestClusterOverObjstore(t *testing.T) {
	ds := workload.TPCH(0, workload.TPCHConfig{SF: 4, RowsPerObject: 12, Seed: 2})
	s := New()
	if err := LoadDataset(s, ds); err != nil {
		t.Fatal(err)
	}
	store, err := BuildSegmentStore(s, ds.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.Evaluate(ds, workload.Q12(ds.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	client := &skipper.Client{
		Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
		Queries: []skipper.QuerySpec{workload.Q12(ds.Catalog)}, CacheObjects: 6,
	}
	res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].Rows != int64(len(want)) {
		t.Fatalf("rows %d != %d", res.Clients[0].Rows, len(want))
	}
}

func TestObjectNaming(t *testing.T) {
	id := segment.ObjectID{Tenant: 2, Table: "orders", Index: 7}
	if ContainerFor(id) != "t2.orders" {
		t.Fatal(ContainerFor(id))
	}
	if KeyFor(id) != "000007" {
		t.Fatal(KeyFor(id))
	}
}
